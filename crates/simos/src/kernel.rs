//! The kernel: machine + process + both exception delivery paths.
//!
//! [`Kernel`] owns an [`efex_mips::Machine`] and a single [`Process`] (the
//! paper's environment is a single-threaded address space). Guest execution
//! proceeds in [`Kernel::run_user`]; whenever the guest kernel stubs issue
//! an `hcall`, control returns here and the host services the request:
//!
//! - **UTLB refill** — install a TLB entry from the page table, page in
//!   from the simulated disk, or route a protection fault into delivery;
//! - **standard exception** — system calls and the Ultrix-style signal
//!   machinery (post → recognize → deliver → trampoline → `sigreturn`);
//! - **fast TLB exception** — the page-table half of the paper's fast path
//!   for memory-protection faults, including eager amplification and
//!   subpage emulation.
//!
//! Simple (non-TLB) fast-path exceptions never reach the host at all: the
//! guest assembly handler vectors them straight back to user mode, exactly
//! as the paper's modified Ultrix kernel does.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use efex_mips::asm::{assemble, AsmError, Program};
use efex_mips::cp0::status;
use efex_mips::cycles;
use efex_mips::decode::decode;
use efex_mips::exception::ExcCode;
use efex_mips::isa::{Instruction, Reg};
use efex_mips::machine::{kseg_to_phys, Machine, MachineConfig, MachineError, StopReason};
use efex_mips::tlb::TLB_ENTRIES;
use efex_trace::{null_sink, EventKind, FaultClass, Metrics, SharedSink, TraceEvent, TracePath};

use crate::costs;
use crate::fastexc::hcalls;
use crate::frames::FrameAllocator;
use crate::layout::{self, PAGE_SIZE};
use crate::process::Process;
use crate::signals::{self, Signal, SIGCONTEXT_BYTES};
use crate::syscall::{errno, nr, prot_from_arg};
use crate::vm::{FaultKind, MapError, Prot};

/// The signal trampoline mapped into every process's runtime area: calls
/// the handler, then issues `sigreturn` — the user-side half of Figure 1.
pub const TRAMPOLINE_ASM: &str = r#"
.org 0x00410000
tramp_sig:
    move  $s0, $a2          # sigcontext pointer survives the handler call
    jalr  $t9               # invoke the user handler(sig, code, sc)
    nop
    move  $a0, $s0
    li    $v0, 5            # SYS_sigreturn
    syscall
    nop
"#;

/// Kernel construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct KernelConfig {
    /// Physical memory size in bytes.
    pub phys_bytes: usize,
    /// Cycles charged per page-in from the simulated disk.
    pub page_in_cost: u64,
    /// Simulated clock in MHz (used only to convert cycles to µs).
    pub clock_mhz: f64,
    /// Ultrix-compatible unaligned-access fixup: instead of posting
    /// `SIGBUS`, the kernel emulates the unaligned load/store and resumes
    /// (the paper notes Ultrix "optionally tries to fix up unaligned access
    /// exceptions"). Fast-path delivery, when enabled for the exception,
    /// takes precedence — applications that *want* the fault get it.
    pub fixup_unaligned: bool,
    /// Machine construction config (execution engine + decode cache).
    /// `None` inherits the booting thread's scoped default — see
    /// [`efex_mips::machine::with_machine_config`].
    pub machine: Option<MachineConfig>,
}

impl Default for KernelConfig {
    fn default() -> KernelConfig {
        KernelConfig {
            phys_bytes: layout::DEFAULT_PHYS_BYTES,
            page_in_cost: costs::PAGE_IN_DEFAULT,
            clock_mhz: cycles::CLOCK_MHZ,
            fixup_unaligned: false,
            machine: None,
        }
    }
}

/// A fatal kernel error (not a guest-visible condition).
#[derive(Debug)]
pub enum KernelError {
    /// The embedded kernel/runtime assembly failed to assemble.
    Asm(AsmError),
    /// The machine reported a fatal simulation error.
    Machine(MachineError),
    /// A mapping operation failed.
    Map(MapError),
    /// The guest kernel faulted (double fault): unrecoverable.
    KernelFault(String),
    /// A delivery invariant was violated at `epc`: the kernel produces a
    /// diagnostic instead of panicking, so injected faults surface as
    /// typed errors (or specified degradations) rather than host panics.
    Delivery {
        /// What went wrong, in delivery-path terms.
        reason: String,
        /// The exception PC the delivery was servicing.
        epc: u32,
    },
    /// The pinned communication page was lost mid-delivery and could not
    /// be restored (out of frames): fast delivery is disabled.
    CommPageLost {
        /// User virtual address of the (formerly pinned) comm page.
        comm_vaddr: u32,
    },
    /// The guest issued an hcall the host does not know.
    UnknownHcall(u32),
    /// The process already exited.
    NotRunning,
    /// A checkpoint could not be decoded or applied (wrong memory size,
    /// corrupt artifact, post-restore digest divergence). Wraps the typed
    /// wire-format error; never a panic.
    Snapshot(efex_snap::SnapError),
}

/// The simulator's unified error surface: kernel and delivery-path failures
/// are all typed [`KernelError`] variants, never panics.
pub type EfexError = KernelError;

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::Asm(e) => write!(f, "assembly error: {e}"),
            KernelError::Machine(e) => write!(f, "machine error: {e}"),
            KernelError::Map(e) => write!(f, "mapping error: {e}"),
            KernelError::KernelFault(s) => write!(f, "kernel fault: {s}"),
            KernelError::Delivery { reason, epc } => {
                write!(f, "delivery fault at EPC {epc:#010x}: {reason}")
            }
            KernelError::CommPageLost { comm_vaddr } => {
                write!(f, "comm page {comm_vaddr:#010x} lost and unrepairable")
            }
            KernelError::UnknownHcall(n) => write!(f, "unknown hcall {n}"),
            KernelError::NotRunning => write!(f, "process is not running"),
            KernelError::Snapshot(e) => write!(f, "snapshot error: {e}"),
        }
    }
}

impl From<efex_snap::SnapError> for KernelError {
    fn from(e: efex_snap::SnapError) -> KernelError {
        KernelError::Snapshot(e)
    }
}

impl Error for KernelError {}

impl From<AsmError> for KernelError {
    fn from(e: AsmError) -> KernelError {
        KernelError::Asm(e)
    }
}

impl From<MachineError> for KernelError {
    fn from(e: MachineError) -> KernelError {
        KernelError::Machine(e)
    }
}

impl From<MapError> for KernelError {
    fn from(e: MapError) -> KernelError {
        KernelError::Map(e)
    }
}

/// Why [`Kernel::run_user`] returned.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunOutcome {
    /// The process called `exit`.
    Exited(i32),
    /// The step budget ran out (the process is still runnable).
    StepLimit,
    /// The process was terminated by an unhandled signal.
    Terminated(Signal),
}

/// A fault reported by the host-level access API ([`Kernel::host_load_u32`]
/// and friends): the exception a guest access at this address would raise,
/// plus the kernel's classification.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HostFault {
    /// Hardware exception code.
    pub code: ExcCode,
    /// Faulting virtual address.
    pub vaddr: u32,
    /// Kernel classification from the page table.
    pub kind: FaultKind,
    /// Whether the access was a write.
    pub write: bool,
}

impl fmt::Display for HostFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {:#010x} ({})", self.code, self.vaddr, self.kind)
    }
}

/// How a delivery request reached the host.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Via {
    /// Through the guest general-vector phases (which already wrote the
    /// communication frame and charged their own cycles).
    GeneralVector,
    /// From the host TLB-refill path (the guest phases did not run; the
    /// host charges their equivalent and writes the frame itself).
    Refill,
}

/// A perturbation of the delivery path, applied at a defined point by the
/// fault-injection harness (`efex-inject`). Queue one with
/// [`Kernel::inject`]; the kernel consumes it during the next fast-path
/// delivery and must either recover bit-exact or degrade as specified
/// (Unix-signal fallback or kill-with-diagnostic) — never wedge or panic.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InjectAction {
    /// Overwrite one word of the communication frame for `code` between the
    /// kernel's state save and the user handler's resume (models a
    /// concurrent rewrite of the comm page).
    CorruptCommWord {
        /// Exception whose frame to corrupt.
        code: ExcCode,
        /// Byte offset within the 32-byte frame.
        offset: u32,
        /// Replacement word.
        value: u32,
    },
    /// Evict the pinned communication page (page-table residency and TLB
    /// entry) before delivery starts — a pinning violation.
    EvictCommPage,
    /// Invalidate the TLB entry covering the user handler's entry point
    /// mid-delivery; the resume must refill via the slow path.
    EvictHandlerTlb,
}

/// The simulated operating system kernel.
pub struct Kernel {
    machine: Machine,
    proc: Process,
    frames: FrameAllocator,
    console: Vec<u8>,
    page_in_cost: u64,
    clock_mhz: f64,
    fixup_unaligned: bool,
    refill_rr: usize,
    kernel_syms: BTreeMap<String, u32>,
    trace: SharedSink,
    trace_path: TracePath,
    metrics: Metrics,
    /// Signal deliveries in flight, innermost last: (class, code,
    /// handler-entry cycles), popped by `sigreturn` to close out the
    /// handler/return phases. A stack, because a handler can itself fault
    /// and take a second, nested delivery.
    unix_pending: Vec<(FaultClass, ExcCode, u64)>,
    /// Injected perturbations awaiting the next fast-path delivery.
    pending_injections: Vec<InjectAction>,
    /// Human-readable diagnostic from the most recent degraded delivery.
    last_diagnostic: Option<String>,
    /// Checkpoints captured from this kernel (host-side observability).
    snapshot_saves: u64,
    /// Checkpoints restored into this kernel (host-side observability).
    snapshot_restores: u64,
    /// Restores whose post-apply machine digest did not match the digest
    /// recorded at capture time. Always zero in a healthy system — the
    /// health plane's restores-are-fingerprint-clean invariant watches it.
    snapshot_restore_divergence: u64,
}

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kernel")
            .field("pid", &self.proc.pid())
            .field("cycles", &self.machine.cycles())
            .finish_non_exhaustive()
    }
}

impl Kernel {
    /// Boots the simulated system: builds the machine, assembles and
    /// installs the guest kernel image (vectors + fast-path handler) and
    /// the user-space signal trampoline, and creates the initial process.
    ///
    /// # Errors
    ///
    /// Fails if the embedded images do not assemble or do not fit.
    pub fn boot(cfg: KernelConfig) -> Result<Kernel, KernelError> {
        let machine_cfg = cfg.machine.unwrap_or_else(MachineConfig::inherited);
        let mut machine = Machine::with_config(cfg.phys_bytes, machine_cfg);
        let kimage = assemble(crate::fastexc::KERNEL_ASM)?;
        machine.load_image(&kimage)?;

        let phys_frames = (cfg.phys_bytes as u32) / PAGE_SIZE;
        let frames = FrameAllocator::new(layout::FIRST_USER_FRAME, phys_frames);
        let proc = Process::new(1, 1);
        machine.set_asid(1);

        let mut kernel = Kernel {
            machine,
            proc,
            frames,
            console: Vec::new(),
            page_in_cost: cfg.page_in_cost,
            clock_mhz: cfg.clock_mhz,
            fixup_unaligned: cfg.fixup_unaligned,
            refill_rr: 0,
            kernel_syms: kimage.symbols().clone(),
            trace: null_sink(),
            trace_path: TracePath::FastUser,
            metrics: Metrics::new(),
            unix_pending: Vec::new(),
            pending_injections: Vec::new(),
            last_diagnostic: None,
            snapshot_saves: 0,
            snapshot_restores: 0,
            snapshot_restore_divergence: 0,
        };
        // Map and install the user-side runtime (signal trampoline).
        let tramp = assemble(TRAMPOLINE_ASM)?;
        kernel.load_user_segments(&tramp)?;
        #[cfg(debug_assertions)]
        crate::verify::assert_boot_images_verify(&kimage, &tramp);
        Ok(kernel)
    }

    // --- accessors -------------------------------------------------------

    /// The simulated machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable machine access (benchmarks attach profilers through this).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// The current process.
    pub fn process(&self) -> &Process {
        &self.proc
    }

    /// Mutable process access.
    pub fn process_mut(&mut self) -> &mut Process {
        &mut self.proc
    }

    /// Total simulated cycles.
    pub fn cycles(&self) -> u64 {
        self.machine.cycles()
    }

    /// Total simulated time in microseconds.
    pub fn micros(&self) -> f64 {
        cycles::to_micros(self.machine.cycles(), self.clock_mhz)
    }

    /// The simulated clock in MHz.
    pub fn clock_mhz(&self) -> f64 {
        self.clock_mhz
    }

    /// Charges host-modeled cycles.
    pub fn charge(&mut self, cy: u64) {
        self.machine.charge_cycles(cy);
    }

    /// Bytes the guest wrote to the console.
    pub fn console(&self) -> &[u8] {
        &self.console
    }

    /// Address of a symbol in the guest kernel image.
    pub fn kernel_symbol(&self, name: &str) -> Option<u32> {
        self.kernel_syms.get(name).copied()
    }

    // --- exception tracing -------------------------------------------------

    /// Routes lifecycle events to `sink` (the default is a [`NullSink`]
    /// that drops everything; tracing never charges simulated cycles).
    ///
    /// [`NullSink`]: efex_trace::NullSink
    pub fn set_trace_sink(&mut self, sink: SharedSink) {
        self.trace = sink;
    }

    /// The current trace sink (shared with higher layers).
    pub fn trace_sink(&self) -> &SharedSink {
        &self.trace
    }

    /// Sets the delivery-path label stamped on kernel-side trace events
    /// (the kernel itself only distinguishes fast vs. signal delivery; the
    /// configured path disambiguates fast-user from hardware-vectored).
    pub fn set_trace_path(&mut self, path: TracePath) {
        self.trace_path = path;
    }

    /// Kernel-side exception metrics (deliveries, page faults, phases).
    pub fn trace_metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable metrics access (measurement harnesses record through this).
    pub fn trace_metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// One flat health-plane snapshot of this kernel: the per-process
    /// counters plus the machine-level effectiveness numbers (decode-cache
    /// hits/misses/evictions, TLB writes, simulated cycles) the health
    /// monitor watches. Pure read — charges no simulated cycles, so a run
    /// with health monitoring on stays bit-identical to one without.
    pub fn health_snapshot(&self) -> efex_trace::StatsSnapshot {
        use efex_trace::Snapshot as _;
        let (hits, misses) = self.machine.decode_cache_stats();
        let mut snap = self.proc.stats.snapshot();
        snap.component = "kernel-health";
        let (sb_hits, sb_misses, sb_invalidations) = self.machine.superblock_stats();
        snap.counter("decode_cache_hits", hits)
            .counter("decode_cache_misses", misses)
            .counter(
                "decode_cache_evictions",
                self.machine.decode_cache_evictions(),
            )
            .counter("superblock_hits", sb_hits)
            .counter("superblock_misses", sb_misses)
            .counter("superblock_invalidations", sb_invalidations)
            .counter("snapshot_saves", self.snapshot_saves)
            .counter("snapshot_restores", self.snapshot_restores)
            .counter(
                "snapshot_restore_divergence",
                self.snapshot_restore_divergence,
            )
            .counter("cycles", self.machine.cycles())
    }

    // --- checkpoint / restore --------------------------------------------

    /// Captures the complete guest-visible state of this kernel and its
    /// process as a [`crate::snapshot::KernelState`]: the machine image
    /// (registers, CP0, TLB, memory — the pinned comm page rides along as
    /// ordinary physical pages plus its pinned PTE), the page table, signal
    /// and fast-path registrations, subpage masks, per-process stats, the
    /// frame allocator with its LIFO free list, console output, config
    /// knobs, and the in-flight Unix-delivery stack.
    ///
    /// Host-side observability (trace sink, metrics, pending injections,
    /// the last degrade diagnostic) is excluded by design — it belongs to
    /// the observer. Snapshots may be taken at *any* step boundary,
    /// including inside the vulnerable window between the comm-frame state
    /// save and handler entry: everything the resumed delivery needs is in
    /// guest memory and CP0, so such snapshots round-trip bit-exactly.
    pub fn snapshot(&mut self) -> crate::snapshot::KernelState {
        use crate::snapshot::{KernelState, PteState};
        self.snapshot_saves += 1;
        let machine = self.machine.snapshot();
        let (frames_next, frames_limit, frames_free, frames_allocated) = {
            let (n, l, f, a) = self.frames.raw_state();
            (n, l, f.to_vec(), a)
        };
        KernelState {
            machine_digest: self.machine.step_digest(),
            machine,
            pid: self.proc.pid(),
            asid: self.proc.space().asid(),
            pages: self
                .proc
                .space()
                .iter()
                .map(|(&vpn, pte)| PteState {
                    vpn,
                    pfn: pte.pfn,
                    prot: pte.prot,
                    user_modifiable: pte.user_modifiable,
                    pinned: pte.pinned,
                    dirty: pte.dirty,
                })
                .collect(),
            signal_dispositions: self.proc.signals.dispositions(),
            signals_pending: self.proc.signals.pending_raw(),
            fast: self.proc.fast,
            subpage: self.proc.subpage.iter().collect(),
            stats: self.proc.stats,
            brk: self.proc.brk,
            exited: self.proc.exit_code(),
            frames_next,
            frames_limit,
            frames_free,
            frames_allocated,
            console: self.console.clone(),
            page_in_cost: self.page_in_cost,
            clock_mhz: self.clock_mhz,
            fixup_unaligned: self.fixup_unaligned,
            refill_rr: self.refill_rr as u64,
            unix_pending: self.unix_pending.clone(),
        }
    }

    /// Restores guest-visible state captured by [`Kernel::snapshot`] into
    /// this (booted) kernel. The receiver keeps its own host-side
    /// configuration: execution engine and caches (dropped and rebuilt on
    /// demand by the machine restore), trace sink, metrics, and any pending
    /// injections — so a snapshot taken under one engine resumes bit-exact
    /// under the other.
    ///
    /// After applying the machine image, the restore recomputes the
    /// register-state digest and compares it with the digest recorded at
    /// capture time; a mismatch increments the `snapshot_restore_divergence`
    /// health counter and fails, leaving no silent corruption.
    ///
    /// # Errors
    ///
    /// [`KernelError::Snapshot`] if the snapshot does not fit this kernel
    /// (physical memory size) or fails the post-apply digest check.
    pub fn restore(&mut self, s: &crate::snapshot::KernelState) -> Result<(), KernelError> {
        use crate::snapshot::KernelState;
        self.machine.restore(&s.machine)?;
        let digest = self.machine.step_digest();
        if digest != s.machine_digest {
            self.snapshot_restore_divergence += 1;
            return Err(KernelError::Snapshot(efex_snap::SnapError::Invalid(
                format!(
                    "post-restore machine digest {digest:#018x} != recorded {:#018x}",
                    s.machine_digest
                ),
            )));
        }
        let mut proc = Process::new(s.pid, s.asid);
        for p in &s.pages {
            proc.space_mut().restore_page(p.vpn, KernelState::pte_of(p));
        }
        proc.signals
            .restore_raw(s.signal_dispositions, s.signals_pending);
        proc.fast = s.fast;
        proc.subpage.restore_raw(s.subpage.iter().copied());
        proc.stats = s.stats;
        proc.brk = s.brk;
        if let Some(code) = s.exited {
            proc.exit(code);
        }
        self.proc = proc;
        self.frames = FrameAllocator::from_raw(
            s.frames_next,
            s.frames_limit,
            s.frames_free.clone(),
            s.frames_allocated,
        );
        self.console = s.console.clone();
        self.page_in_cost = s.page_in_cost;
        self.clock_mhz = s.clock_mhz;
        self.fixup_unaligned = s.fixup_unaligned;
        self.refill_rr = s.refill_rr as usize;
        self.unix_pending = s.unix_pending.clone();
        self.snapshot_restores += 1;
        Ok(())
    }

    /// Checkpoint activity counters: `(saves, restores, restore
    /// divergences)`. Host-side observability — never serialized, never
    /// charged simulated cycles.
    pub fn snapshot_counters(&self) -> (u64, u64, u64) {
        (
            self.snapshot_saves,
            self.snapshot_restores,
            self.snapshot_restore_divergence,
        )
    }

    /// Emits one lifecycle event stamped with the current cycle counter.
    fn trace_emit(
        &self,
        kind: EventKind,
        path: TracePath,
        class: FaultClass,
        code: ExcCode,
        vaddr: u32,
        pc: u32,
    ) {
        self.trace.emit(&TraceEvent {
            seq: 0,
            cycles: self.machine.cycles(),
            kind,
            path,
            class,
            exc_code: code.code() as u8,
            vaddr,
            pc,
        });
    }

    /// Classifies a fault for tracing purposes (orthogonal to delivery: the
    /// subpage engine, the unaligned fixup, and plain breakpoints all look
    /// different to an observer even when they share an `ExcCode`).
    fn fault_class(&self, code: ExcCode, bad: Option<u32>) -> FaultClass {
        if let Some(bad) = bad {
            if self.proc.subpage.manages(bad) {
                return FaultClass::Subpage;
            }
        }
        match code {
            ExcCode::TlbMod => FaultClass::WriteProtect,
            ExcCode::TlbLoad | ExcCode::TlbStore => {
                let write = code == ExcCode::TlbStore;
                match bad.map(|b| self.proc.space().classify(b, write)) {
                    Some(Err(FaultKind::NotResident)) => FaultClass::PageFault,
                    Some(Err(FaultKind::Protection)) => FaultClass::WriteProtect,
                    _ => FaultClass::TlbMiss,
                }
            }
            ExcCode::AddrErrLoad | ExcCode::AddrErrStore => FaultClass::Unaligned,
            ExcCode::Breakpoint => FaultClass::Breakpoint,
            _ => FaultClass::Other,
        }
    }

    // --- user-space setup -------------------------------------------------

    /// Maps a user region (page aligned) with the given protection.
    ///
    /// # Errors
    ///
    /// Propagates mapping errors (misalignment, overlap).
    pub fn map_user_region(&mut self, vaddr: u32, len: u32, prot: Prot) -> Result<(), KernelError> {
        self.proc.space_mut().map_region(vaddr, len, prot)?;
        Ok(())
    }

    /// Assembles a user program and loads it into the process's address
    /// space, mapping pages as needed. Returns the program (for symbols and
    /// entry point).
    ///
    /// # Errors
    ///
    /// Fails on assembly errors or exhausted memory.
    pub fn load_user_program(&mut self, source: &str) -> Result<Program, KernelError> {
        let prog = assemble(source)?;
        self.load_user_segments(&prog)?;
        Ok(prog)
    }

    fn load_user_segments(&mut self, prog: &Program) -> Result<(), KernelError> {
        for seg in prog.segments() {
            let start = seg.addr & !(PAGE_SIZE - 1);
            let end = (seg.addr + seg.bytes.len() as u32 + PAGE_SIZE - 1) & !(PAGE_SIZE - 1);
            for page in (start..end).step_by(PAGE_SIZE as usize) {
                if self.proc.space().pte(page).is_none() {
                    self.proc
                        .space_mut()
                        .map_region(page, PAGE_SIZE, Prot::ReadWrite)?;
                }
            }
            self.host_write_bytes(seg.addr, &seg.bytes)?;
        }
        Ok(())
    }

    /// Maps a user stack of `pages` pages ending at the stack top and
    /// returns the initial stack pointer.
    ///
    /// # Errors
    ///
    /// Fails if the stack region is already mapped.
    pub fn setup_stack(&mut self, pages: u32) -> Result<u32, KernelError> {
        let len = pages * PAGE_SIZE;
        let base = layout::USER_STACK_TOP - len;
        self.proc
            .space_mut()
            .map_region(base, len, Prot::ReadWrite)?;
        Ok(layout::USER_STACK_TOP - 16)
    }

    /// Starts user execution at `entry` with stack pointer `sp`.
    pub fn exec(&mut self, entry: u32, sp: u32) {
        let cp0 = self.machine.cp0_mut();
        cp0.status = (cp0.status & !0x3f) | status::KUC | status::IEC;
        self.machine.cpu_mut().set_reg(Reg::SP, sp);
        self.machine.set_pc(entry);
    }

    // --- host-level memory access (for host-level applications) ----------

    fn host_access(&mut self, vaddr: u32, write: bool) -> Result<u32, HostFault> {
        match self.proc.space().classify(vaddr, write) {
            Ok(pfn) => Ok((pfn << 12) | (vaddr & (PAGE_SIZE - 1))),
            Err(FaultKind::NotResident) => {
                // Page faults are always serviced silently by the kernel.
                let (pfn, paged_in) = self
                    .proc
                    .space_mut()
                    .ensure_resident(vaddr, &mut self.frames)
                    .map_err(|_| HostFault {
                        code: if write {
                            ExcCode::TlbStore
                        } else {
                            ExcCode::TlbLoad
                        },
                        vaddr,
                        kind: FaultKind::NotResident,
                        write,
                    })?;
                if paged_in {
                    self.machine.charge_cycles(self.page_in_cost);
                    self.proc.stats.page_faults += 1;
                }
                Ok((pfn << 12) | (vaddr & (PAGE_SIZE - 1)))
            }
            Err(kind) => {
                let code = match (kind, write) {
                    (FaultKind::Protection, true) => ExcCode::TlbMod,
                    (FaultKind::Protection, false) => ExcCode::TlbLoad,
                    (_, true) => ExcCode::TlbStore,
                    (_, false) => ExcCode::TlbLoad,
                };
                Err(HostFault {
                    code,
                    vaddr,
                    kind,
                    write,
                })
            }
        }
    }

    /// Loads a word from the process's address space with full fault
    /// semantics, transparently servicing page faults.
    ///
    /// # Errors
    ///
    /// Returns the fault a guest load would raise (alignment, protection,
    /// unmapped).
    pub fn host_load_u32(&mut self, vaddr: u32) -> Result<u32, HostFault> {
        if vaddr & 3 != 0 {
            return Err(HostFault {
                code: ExcCode::AddrErrLoad,
                vaddr,
                kind: FaultKind::NotMapped,
                write: false,
            });
        }
        let paddr = self.host_access(vaddr, false)?;
        Ok(self.machine.mem().read_u32(paddr).unwrap_or(0))
    }

    /// Stores a word (see [`Kernel::host_load_u32`]).
    ///
    /// # Errors
    ///
    /// Returns the fault a guest store would raise.
    pub fn host_store_u32(&mut self, vaddr: u32, value: u32) -> Result<(), HostFault> {
        if vaddr & 3 != 0 {
            return Err(HostFault {
                code: ExcCode::AddrErrStore,
                vaddr,
                kind: FaultKind::NotMapped,
                write: true,
            });
        }
        let paddr = self.host_access(vaddr, true)?;
        let _ = self.machine.mem_mut().write_u32(paddr, value);
        Ok(())
    }

    /// Writes raw bytes into the address space with kernel rights
    /// (program loading); pages must be mapped.
    ///
    /// # Errors
    ///
    /// Fails if a page is unmapped or memory is exhausted.
    pub fn host_write_bytes(&mut self, vaddr: u32, bytes: &[u8]) -> Result<(), KernelError> {
        let mut addr = vaddr;
        let mut rest = bytes;
        while !rest.is_empty() {
            let in_page = (PAGE_SIZE - (addr % PAGE_SIZE)).min(rest.len() as u32) as usize;
            let (pfn, _) = self
                .proc
                .space_mut()
                .ensure_resident(addr, &mut self.frames)?;
            let paddr = (pfn << 12) | (addr & (PAGE_SIZE - 1));
            self.machine
                .mem_mut()
                .write_bytes(paddr, &rest[..in_page])
                .map_err(|_| KernelError::KernelFault("physical write out of range".into()))?;
            addr += in_page as u32;
            rest = &rest[in_page..];
        }
        Ok(())
    }

    /// Reads raw bytes from the address space with kernel rights.
    ///
    /// # Errors
    ///
    /// Fails if a page is unmapped.
    pub fn host_read_bytes(&mut self, vaddr: u32, len: usize) -> Result<Vec<u8>, KernelError> {
        let mut out = Vec::with_capacity(len);
        let mut addr = vaddr;
        let mut rest = len;
        while rest > 0 {
            let in_page = ((PAGE_SIZE - (addr % PAGE_SIZE)) as usize).min(rest);
            let (pfn, _) = self
                .proc
                .space_mut()
                .ensure_resident(addr, &mut self.frames)?;
            let paddr = (pfn << 12) | (addr & (PAGE_SIZE - 1));
            let chunk = self
                .machine
                .mem()
                .read_bytes(paddr, in_page)
                .map_err(|_| KernelError::KernelFault("physical read out of range".into()))?;
            out.extend_from_slice(chunk);
            addr += in_page as u32;
            rest -= in_page;
        }
        Ok(out)
    }

    // --- protection services ----------------------------------------------

    /// Full-weight `mprotect`: charges the Ultrix syscall wrapper plus
    /// per-page work, changes the page table, and shoots down stale TLB
    /// entries.
    ///
    /// # Errors
    ///
    /// Propagates mapping errors.
    pub fn sys_mprotect(&mut self, vaddr: u32, len: u32, prot: Prot) -> Result<(), KernelError> {
        let touched = self.proc.space_mut().protect_region(vaddr, len, prot)?;
        let cost =
            costs::ULTRIX_SYSCALL_WRAPPER + costs::ULTRIX_MPROTECT_PER_PAGE * touched.len() as u64;
        self.machine.charge_cycles(cost);
        let asid = self.proc.space().asid();
        for page in touched {
            self.machine.tlb_mut().invalidate_page(page, asid);
        }
        self.proc.stats.syscalls += 1;
        Ok(())
    }

    /// The paper's lean protection-change call (Section 3.2.3): same effect
    /// as [`Kernel::sys_mprotect`] at a fraction of the cost.
    ///
    /// # Errors
    ///
    /// Propagates mapping errors.
    pub fn sys_uexc_protect(
        &mut self,
        vaddr: u32,
        len: u32,
        prot: Prot,
    ) -> Result<(), KernelError> {
        let touched = self.proc.space_mut().protect_region(vaddr, len, prot)?;
        self.machine
            .charge_cycles(costs::FAST_PROTECT_SYSCALL + 2 * touched.len() as u64);
        let asid = self.proc.space().asid();
        for page in touched {
            self.machine.tlb_mut().invalidate_page(page, asid);
        }
        self.proc.stats.syscalls += 1;
        Ok(())
    }

    /// Subpage protection (Section 3.2.4): (un)protects 1 KB logical pages,
    /// adjusting hardware page protection accordingly.
    ///
    /// # Errors
    ///
    /// Fails on misaligned ranges or unmapped pages.
    pub fn sys_subpage_protect(
        &mut self,
        vaddr: u32,
        len: u32,
        protected: bool,
    ) -> Result<(), KernelError> {
        let touched = self
            .proc
            .subpage
            .protect(vaddr, len, protected)
            .map_err(|m| KernelError::Map(MapError::Unaligned).tap_msg(m))?;
        self.machine
            .charge_cycles(costs::FAST_PROTECT_SYSCALL + 2 * touched.len() as u64);
        let asid = self.proc.space().asid();
        for (page, any_protected) in touched {
            let prot = if any_protected {
                Prot::Read
            } else {
                Prot::ReadWrite
            };
            self.proc
                .space_mut()
                .protect_region(page, PAGE_SIZE, prot)?;
            self.machine.tlb_mut().invalidate_page(page, asid);
        }
        self.proc.stats.syscalls += 1;
        Ok(())
    }

    /// Grants or revokes the user-modifiable TLB protection bit
    /// (Section 2.2) on a range.
    ///
    /// # Errors
    ///
    /// Fails on unmapped pages.
    pub fn sys_tlb_grant(
        &mut self,
        vaddr: u32,
        len: u32,
        allowed: bool,
    ) -> Result<(), KernelError> {
        let touched = self
            .proc
            .space_mut()
            .set_user_modifiable(vaddr, len, allowed)?;
        self.machine.charge_cycles(costs::FAST_PROTECT_SYSCALL);
        let asid = self.proc.space().asid();
        for page in touched {
            self.machine.tlb_mut().invalidate_page(page, asid);
        }
        self.proc.stats.syscalls += 1;
        Ok(())
    }

    /// Enables the fast exception path for the process without guest code
    /// (host-level applications register Rust handlers in `efex-core`).
    ///
    /// # Errors
    ///
    /// Fails if the mask requests a non-enableable exception.
    pub fn fast_enable_host(&mut self, mask: u32) -> Result<(), KernelError> {
        if mask & !crate::fastexc::FastExcState::allowed_mask() != 0 {
            return Err(KernelError::Map(MapError::Unaligned)
                .tap_msg("mask requests non-enableable exceptions".into()));
        }
        self.proc.fast.enabled_mask = mask;
        self.machine.charge_cycles(costs::ULTRIX_SYSCALL_WRAPPER);
        Ok(())
    }

    /// Toggles eager amplification (Section 3.2.3).
    pub fn set_eager_amplification(&mut self, on: bool) {
        self.proc.fast.eager_amplification = on;
    }

    // --- fault injection ---------------------------------------------------

    /// Queues a delivery-path perturbation; the next fast-path delivery
    /// consumes it ([`InjectAction`] says where each one bites).
    pub fn inject(&mut self, action: InjectAction) {
        self.pending_injections.push(action);
    }

    /// Diagnostic from the most recent degraded delivery, if any.
    pub fn last_diagnostic(&self) -> Option<&str> {
        self.last_diagnostic.as_deref()
    }

    /// Evicts the pinned communication page *right now* (page-table
    /// residency, pin bit, and TLB entry all dropped) — for scenarios where
    /// the perturbation must land while the guest runs without host entry,
    /// e.g. between a breakpoint delivery and the handler's comm-page load.
    ///
    /// The old frame is deliberately leaked, not freed: a stale KSEG0 alias
    /// may still point at it, and the repair path copies the frame contents
    /// back when it re-establishes residency.
    pub fn inject_evict_comm_page(&mut self) {
        let comm = self.proc.fast.comm_vaddr;
        if comm == 0 {
            return;
        }
        let _ = self.proc.space_mut().set_pinned(comm, PAGE_SIZE, false);
        if let Some(pte) = self.proc.space_mut().pte_mut(comm) {
            pte.pfn = None;
        }
        let asid = self.proc.space().asid();
        self.machine.tlb_mut().invalidate_page(comm, asid);
    }

    /// Whether the fast path's pinned-comm-page invariant actually holds:
    /// the page is mapped, resident, pinned, and the published KSEG0 alias
    /// matches its frame. Host-level registrations (no comm page) are
    /// vacuously intact. Pure check — charges no simulated cycles, so
    /// unperturbed runs stay bit-exact.
    fn fast_path_intact(&self) -> bool {
        let comm = self.proc.fast.comm_vaddr;
        if comm == 0 {
            return true;
        }
        let Some(pte) = self.proc.space().pte(comm) else {
            return false;
        };
        if !pte.pinned {
            return false;
        }
        match pte.pfn {
            Some(pfn) => self.proc.fast.comm_kseg0 == 0x8000_0000 | (pfn << 12),
            None => false,
        }
    }

    /// Re-establishes the comm page after a pinning violation: makes it
    /// resident again, copies the frame contents from the stale alias frame
    /// (guest-saved state must survive the eviction), re-pins, and
    /// republishes the KSEG0 alias. Returns `false` — with fast delivery
    /// disabled as the specified permanent degradation — if no frame is
    /// available.
    fn comm_page_repair(&mut self) -> bool {
        let comm = self.proc.fast.comm_vaddr;
        let stale = kseg_to_phys(self.proc.fast.comm_kseg0);
        match self
            .proc
            .space_mut()
            .ensure_resident(comm, &mut self.frames)
        {
            Ok((pfn, paged_in)) => {
                if paged_in {
                    self.machine.charge_cycles(self.page_in_cost);
                }
                let fresh = pfn << 12;
                if let Some(src) = stale {
                    if src != fresh {
                        let copied = self
                            .machine
                            .mem()
                            .read_bytes(src, PAGE_SIZE as usize)
                            .ok()
                            .map(<[u8]>::to_vec);
                        if let Some(bytes) = copied {
                            let _ = self.machine.mem_mut().write_bytes(fresh, &bytes);
                        }
                    }
                }
                let _ = self.proc.space_mut().set_pinned(comm, PAGE_SIZE, true);
                self.proc.fast.comm_kseg0 = 0x8000_0000 | fresh;
                self.sync_uarea();
                true
            }
            Err(_) => {
                self.proc.fast.enabled_mask = 0;
                self.sync_uarea();
                false
            }
        }
    }

    /// Applies queued pre-delivery injections (those that must land before
    /// the kernel inspects fast-path state). Post-delivery ones stay queued.
    fn apply_pre_injections(&mut self) {
        let pre: Vec<InjectAction> = self
            .pending_injections
            .iter()
            .copied()
            .filter(|a| matches!(a, InjectAction::EvictCommPage))
            .collect();
        if pre.is_empty() {
            return;
        }
        self.pending_injections
            .retain(|a| !matches!(a, InjectAction::EvictCommPage));
        for _ in pre {
            self.inject_evict_comm_page();
        }
    }

    /// Applies queued post-save injections — after [`Kernel::write_comm_frame`],
    /// before the resume into the user handler. This is the window the
    /// harness perturbs: state is saved, the handler has not yet run.
    fn apply_post_injections(&mut self) {
        for action in std::mem::take(&mut self.pending_injections) {
            match action {
                InjectAction::CorruptCommWord {
                    code,
                    offset,
                    value,
                } => {
                    let base = self.proc.fast.comm_kseg0;
                    let Some(phys) = kseg_to_phys(base) else {
                        continue;
                    };
                    let addr = phys + code.code() * layout::COMM_FRAME_SIZE + offset;
                    let _ = self.machine.mem_mut().write_u32(addr, value);
                }
                InjectAction::EvictHandlerTlb => {
                    let page = self.proc.fast.handler & !(PAGE_SIZE - 1);
                    let asid = self.proc.space().asid();
                    self.machine.tlb_mut().invalidate_page(page, asid);
                }
                InjectAction::EvictCommPage => {
                    // Pre-delivery action that slipped through (queued after
                    // the pre pass ran); apply it now so it is not lost.
                    self.inject_evict_comm_page();
                }
            }
        }
    }

    // --- guest execution ---------------------------------------------------

    /// Runs guest user code until exit, termination, or `max_steps`
    /// retired instructions.
    ///
    /// # Errors
    ///
    /// Fails on double faults or unknown host calls — simulator bugs, not
    /// guest-visible conditions.
    pub fn run_user(&mut self, max_steps: u64) -> Result<RunOutcome, KernelError> {
        if self.proc.exit_code().is_some() {
            return Err(KernelError::NotRunning);
        }
        let start = self.machine.instructions_retired();
        loop {
            let executed = self.machine.instructions_retired() - start;
            if executed >= max_steps {
                return Ok(RunOutcome::StepLimit);
            }
            match self.machine.run(max_steps - executed)? {
                StopReason::StepLimit => return Ok(RunOutcome::StepLimit),
                StopReason::HostCall(n) => {
                    let outcome = match n {
                        hcalls::UTLB_REFILL => self.handle_utlb()?,
                        hcalls::STANDARD_EXC => self.handle_standard()?,
                        hcalls::FAST_TLB_EXC => self.handle_fast_tlb()?,
                        other => return Err(KernelError::UnknownHcall(other)),
                    };
                    if let Some(out) = outcome {
                        if let RunOutcome::Exited(code) = out {
                            self.proc.exit(code);
                        }
                        return Ok(out);
                    }
                }
            }
        }
    }

    /// Resumes user execution at `pc` (pops the exception mode stack).
    fn resume_user_at(&mut self, pc: u32) {
        self.machine.cp0_mut().rfe();
        self.machine.set_pc(pc);
    }

    // --- hcall handlers -----------------------------------------------------

    /// UTLB refill: install a translation, service a page fault, or route a
    /// protection fault into delivery.
    fn handle_utlb(&mut self) -> Result<Option<RunOutcome>, KernelError> {
        let bad = self.machine.cp0().bad_vaddr;
        let epc = self.machine.cp0().epc;
        let code = self.machine.cp0().exc_code().unwrap_or(ExcCode::TlbLoad);
        let write = code == ExcCode::TlbStore;
        self.machine.charge_cycles(costs::TLB_REFILL);

        match self.proc.space().classify(bad, false) {
            // Readable (possibly write-protected): install and retry; a
            // store to a write-protected page will then raise TlbMod at the
            // general vector, as on real hardware.
            Ok(_) => {
                self.install_refill_entry(bad);
                self.resume_user_at(epc);
                Ok(None)
            }
            Err(FaultKind::NotResident)
                if bad & !(PAGE_SIZE - 1) == self.proc.fast.comm_vaddr
                    && self.proc.fast.comm_kseg0 != 0
                    && !self.fast_path_intact() =>
            {
                // The pinned comm page was evicted out from under the fast
                // path (pinning violation). Degrade gracefully: restore the
                // page — contents included — through the slow refill path
                // and resume. Extra cycles, identical architectural state.
                let class = self.fault_class(code, Some(bad));
                self.proc.stats.degraded_deliveries += 1;
                self.metrics.record_degraded(self.trace_path, class);
                self.last_diagnostic = Some(format!(
                    "pinned comm page {bad:#010x} missed in TLB at EPC {epc:#010x}; \
                     repaired via slow refill path"
                ));
                self.proc.stats.utlb_repairs += 1;
                if !self.comm_page_repair() {
                    // Out of frames: fast delivery is already disabled;
                    // kill with a diagnostic rather than loop on the miss.
                    self.last_diagnostic = Some(format!(
                        "pinned comm page {bad:#010x} lost and unrepairable; killing process"
                    ));
                    return Ok(Some(RunOutcome::Terminated(Signal::Segv)));
                }
                self.proc.stats.comm_page_repairs += 1;
                self.proc.stats.page_faults += 1;
                self.install_refill_entry(bad);
                self.resume_user_at(epc);
                Ok(None)
            }
            Err(FaultKind::NotResident) => {
                self.machine.charge_cycles(self.page_in_cost);
                self.proc
                    .space_mut()
                    .ensure_resident(bad, &mut self.frames)
                    .map_err(KernelError::Map)?;
                self.proc.stats.page_faults += 1;
                self.metrics
                    .record_page_fault(self.trace_path, FaultClass::PageFault, bad);
                self.install_refill_entry(bad);
                self.resume_user_at(epc);
                Ok(None)
            }
            Err(kind) => {
                let code = if write {
                    ExcCode::TlbStore
                } else {
                    ExcCode::TlbLoad
                };
                let _ = kind;
                self.deliver_fault(code, Some(bad), Via::Refill)
            }
        }
    }

    /// Standard path: system calls and Ultrix-style signal delivery.
    fn handle_standard(&mut self) -> Result<Option<RunOutcome>, KernelError> {
        let cp0 = self.machine.cp0();
        let code = cp0
            .exc_code()
            .ok_or_else(|| KernelError::KernelFault("undecodable cause".into()))?;
        let from_user = cp0.status & status::KUP != 0;
        if !from_user {
            return Err(KernelError::KernelFault(format!(
                "{} at EPC {:#010x} in kernel mode",
                code, cp0.epc
            )));
        }
        match code {
            ExcCode::Syscall => self.dispatch_syscall(),
            ExcCode::Interrupt => {
                // Asynchronous events are out of scope; resume.
                let epc = self.machine.cp0().epc;
                self.resume_user_at(epc);
                Ok(None)
            }
            _ => {
                let bad = matches!(
                    code,
                    ExcCode::TlbMod
                        | ExcCode::TlbLoad
                        | ExcCode::TlbStore
                        | ExcCode::AddrErrLoad
                        | ExcCode::AddrErrStore
                        | ExcCode::BusErrData
                        | ExcCode::BusErrFetch
                )
                .then(|| self.machine.cp0().bad_vaddr);
                self.deliver_fault(code, bad, Via::GeneralVector)
            }
        }
    }

    /// Fast path, TLB-type exception: the guest phases already ran and
    /// wrote the communication frame; the kernel now consults page tables
    /// (Section 3.2.2), applies subpage emulation or eager amplification,
    /// and completes the user-level delivery.
    fn handle_fast_tlb(&mut self) -> Result<Option<RunOutcome>, KernelError> {
        let code = self.machine.cp0().exc_code().unwrap_or(ExcCode::TlbMod);
        let bad = self.machine.cp0().bad_vaddr;
        self.deliver_fault(code, Some(bad), Via::GeneralVector)
    }

    // --- delivery ------------------------------------------------------------

    /// Routes a synchronous exception to the fast user path, the Unix
    /// signal path, or termination.
    fn deliver_fault(
        &mut self,
        code: ExcCode,
        bad: Option<u32>,
        via: Via,
    ) -> Result<Option<RunOutcome>, KernelError> {
        let epc = self.machine.cp0().epc;
        let bd = self.machine.cp0().cause_bd();
        let class = self.fault_class(code, bad);
        let badv = bad.unwrap_or(0);

        'fast: {
            if !(self.proc.fast.enabled_for(code) && self.proc.fast.handler != 0) {
                break 'fast;
            }
            self.apply_pre_injections();
            if !self.fast_path_intact() {
                // Pinning violation: the comm page the guest save phase just
                // wrote through (or is about to) is gone. Repair it, count
                // the delivery as degraded, and fall through to the Unix
                // signal path — the specified degradation; never wedge.
                self.proc.stats.degraded_deliveries += 1;
                self.metrics.record_degraded(self.trace_path, class);
                self.last_diagnostic = Some(format!(
                    "comm page {:#010x} lost before {code} delivery at EPC {epc:#010x}; \
                     falling back to Unix signals",
                    self.proc.fast.comm_vaddr
                ));
                if self.comm_page_repair() {
                    self.proc.stats.comm_page_repairs += 1;
                }
                break 'fast;
            }
            let path = self.trace_path;
            let t_raised = self.machine.cycles();
            self.trace_emit(EventKind::FaultRaised, path, class, code, badv, epc);
            // TLB-type work: page-table checks, subpage engine, eager
            // amplification.
            if code.is_tlb() {
                self.machine.charge_cycles(costs::FAST_TLBFAULT_KERNEL);
                if let Some(bad) = bad {
                    if self.proc.subpage.manages(bad) {
                        self.machine.charge_cycles(costs::SUBPAGE_LOOKUP);
                        if !self.proc.subpage.is_protected(bad) {
                            // Unprotected logical subpage: emulate and resume;
                            // the program never sees the fault.
                            self.trace_emit(EventKind::KernelEntered, path, class, code, badv, epc);
                            match self.emulate_subpage_access(bad, epc, bd) {
                                Ok(()) => {}
                                Err(e @ KernelError::Delivery { .. }) => {
                                    // Unemulatable shape (e.g. unpredictable
                                    // link-register use): degrade to signal
                                    // delivery with a diagnostic.
                                    self.proc.stats.degraded_deliveries += 1;
                                    self.metrics.record_degraded(path, class);
                                    self.last_diagnostic = Some(e.to_string());
                                    break 'fast;
                                }
                                Err(e) => return Err(e),
                            }
                            self.metrics.record_page_fault(path, class, bad);
                            self.trace_emit(EventKind::Resumed, path, class, code, badv, epc);
                            return Ok(None);
                        }
                        // Protected subpage: amplify the hardware page and
                        // deliver (Section 3.2.4).
                        self.amplify(bad);
                    } else if self.proc.fast.eager_amplification
                        && self.proc.space().pte(bad).is_some()
                    {
                        self.amplify(bad);
                        self.proc.stats.eager_amplifications += 1;
                    }
                    // Make sure the page is resident if it is a true page
                    // fault surfacing here (legal access, not resident).
                    if self.proc.space().classify(bad, false) == Err(FaultKind::NotResident) {
                        self.trace_emit(EventKind::KernelEntered, path, class, code, badv, epc);
                        self.machine.charge_cycles(self.page_in_cost);
                        self.proc
                            .space_mut()
                            .ensure_resident(bad, &mut self.frames)?;
                        self.proc.stats.page_faults += 1;
                        self.metrics
                            .record_page_fault(path, FaultClass::PageFault, bad);
                        self.install_refill_entry(bad);
                        self.resume_user_at(epc);
                        self.trace_emit(EventKind::Resumed, path, class, code, badv, epc);
                        return Ok(None);
                    }
                }
            }
            if via == Via::Refill {
                // The guest phases did not execute; charge their equivalent
                // and write the communication frame on their behalf.
                self.machine.charge_cycles(costs::FAST_GUEST_PHASES_EQUIV);
            }
            self.trace_emit(EventKind::KernelEntered, path, class, code, badv, epc);
            self.write_comm_frame(code, epc, bad);
            self.trace_emit(EventKind::StateSaved, path, class, code, badv, epc);
            // State is saved, the handler has not yet run: the injection
            // window for comm-page corruption and TLB eviction.
            self.apply_post_injections();
            self.proc.stats.fast_delivered += 1;
            let handler = self.proc.fast.handler;
            self.resume_user_at(handler);
            self.trace_emit(EventKind::HandlerEntered, path, class, code, badv, handler);
            self.metrics
                .record_deliver(path, class, self.machine.cycles() - t_raised);
            if let Some(bad) = bad {
                self.metrics.record_page_fault(path, class, bad);
            }
            return Ok(None);
        }

        let path = TracePath::UnixSignals;
        let t_raised = self.machine.cycles();
        self.trace_emit(EventKind::FaultRaised, path, class, code, badv, epc);

        // Ultrix-compatible unaligned fixup (before the signal machinery).
        if self.fixup_unaligned && matches!(code, ExcCode::AddrErrLoad | ExcCode::AddrErrStore) {
            if let Some(bad) = bad {
                if bad < 0x8000_0000 && self.fixup_unaligned_access(bad, epc, bd).is_ok() {
                    self.metrics.record_page_fault(path, class, bad);
                    self.trace_emit(EventKind::Resumed, path, class, code, badv, epc);
                    return Ok(None);
                }
            }
        }

        // Unix signal path.
        if via == Via::Refill {
            self.machine.charge_cycles(costs::ULTRIX_GUEST_PHASES_EQUIV);
        }
        let Some(sig) = Signal::from_exc(code) else {
            return Err(KernelError::KernelFault(format!("undeliverable {code}")));
        };
        self.machine
            .charge_cycles(costs::ULTRIX_EXC_SAVE + costs::ULTRIX_POST);
        if code.is_tlb() {
            self.machine.charge_cycles(costs::ULTRIX_VM_FAULT_WORK);
        }
        self.trace_emit(EventKind::KernelEntered, path, class, code, badv, epc);
        self.proc.signals.post(sig);
        let Some(sig) = self.proc.signals.recognize() else {
            // Unreachable by construction (we just posted), but injection
            // runs must never turn a broken invariant into a host panic.
            return Err(KernelError::Delivery {
                reason: format!("posted {sig:?} but recognize() found nothing pending"),
                epc,
            });
        };
        let handler = match self.proc.signals.disposition(sig) {
            signals::Disposition::Handler(h) => h,
            signals::Disposition::Default => {
                return Ok(Some(RunOutcome::Terminated(sig)));
            }
            signals::Disposition::Ignore => {
                // Resume at the faulting instruction; synchronous faults
                // will refault — exactly the looping the paper discusses.
                self.resume_user_at(epc);
                self.trace_emit(EventKind::Resumed, path, class, code, badv, epc);
                return Ok(None);
            }
        };
        self.machine.charge_cycles(costs::ULTRIX_DELIVER);

        // Build the sigcontext on the user stack.
        let sp = self.machine.cpu().reg(Reg::SP);
        let sc = (sp - SIGCONTEXT_BYTES) & !7;
        // The sigcontext page must be resident and writable.
        for page in [
            sc & !(PAGE_SIZE - 1),
            (sc + SIGCONTEXT_BYTES) & !(PAGE_SIZE - 1),
        ] {
            if self.proc.space().classify(page, true).is_err() {
                match self
                    .proc
                    .space_mut()
                    .ensure_resident(page, &mut self.frames)
                {
                    Ok(_) => {}
                    Err(_) => return Ok(Some(RunOutcome::Terminated(Signal::Segv))),
                }
            }
            self.install_refill_entry(page);
        }
        let cause = self.machine.cp0().cause;
        if signals::write_sigcontext(&mut self.machine, sc, epc, cause, badv).is_err() {
            return Ok(Some(RunOutcome::Terminated(Signal::Segv)));
        }
        self.trace_emit(EventKind::StateSaved, path, class, code, badv, epc);

        // Redirect the exception return into the trampoline.
        let cpu = self.machine.cpu_mut();
        cpu.set_reg(Reg::A0, sig as u32);
        cpu.set_reg(Reg::A1, code.code());
        cpu.set_reg(Reg::A2, sc);
        cpu.set_reg(Reg::T9, handler);
        cpu.set_reg(Reg::SP, sc - 24);
        self.proc.stats.signals_delivered += 1;
        self.resume_user_at(layout::USER_RUNTIME_VADDR);
        self.trace_emit(EventKind::HandlerEntered, path, class, code, badv, handler);
        let now = self.machine.cycles();
        self.metrics.record_deliver(path, class, now - t_raised);
        if let Some(bad) = bad {
            self.metrics.record_page_fault(path, class, bad);
        }
        self.unix_pending.push((class, code, now));
        Ok(None)
    }

    /// Amplifies access on the page holding `vaddr` (Section 3.2.3): the
    /// page table gains write access and the stale TLB entry is removed so
    /// the retry refills with full rights.
    fn amplify(&mut self, vaddr: u32) {
        let page = vaddr & !(PAGE_SIZE - 1);
        if self
            .proc
            .space_mut()
            .protect_region(page, PAGE_SIZE, Prot::ReadWrite)
            .is_ok()
        {
            let asid = self.proc.space().asid();
            self.machine.tlb_mut().invalidate_page(page, asid);
        }
    }

    /// Writes the per-exception communication frame through the comm page's
    /// KSEG0 alias (used when the guest save phase did not run, and to
    /// keep the bad-address slot authoritative).
    fn write_comm_frame(&mut self, code: ExcCode, epc: u32, bad: Option<u32>) {
        let base = self.proc.fast.comm_kseg0;
        if base == 0 {
            return; // host-level registration without a guest comm page
        }
        let Some(phys) = kseg_to_phys(base) else {
            // A corrupt alias must not alias physical 0 (the UTLB vector).
            return;
        };
        let frame = phys + code.code() * layout::COMM_FRAME_SIZE;
        let cause = self.machine.cp0().cause;
        let at = self.machine.cpu().reg(Reg::AT);
        let a0 = self.machine.cpu().reg(Reg::A0);
        let a1 = self.machine.cpu().reg(Reg::A1);
        let mem = self.machine.mem_mut();
        let _ = mem.write_u32(frame + layout::comm::EPC, epc);
        let _ = mem.write_u32(frame + layout::comm::CAUSE, cause);
        let _ = mem.write_u32(frame + layout::comm::BADVADDR, bad.unwrap_or(0));
        let _ = mem.write_u32(frame + layout::comm::AT, at);
        let _ = mem.write_u32(frame + layout::comm::K0, a0);
        let _ = mem.write_u32(frame + layout::comm::K1, a1);
        let _ = mem.write_u32(frame + layout::comm::ACTIVE, 1);
    }

    /// Installs a TLB entry for `vaddr` from the page table, round-robin
    /// over the non-wired slots.
    fn install_refill_entry(&mut self, vaddr: u32) {
        if let Some(entry) = self.proc.space().tlb_entry_for(vaddr) {
            let idx = 8 + (self.refill_rr % (TLB_ENTRIES - 8));
            self.refill_rr = self.refill_rr.wrapping_add(1);
            self.machine.tlb_mut().write(idx, entry);
            self.proc.stats.tlb_refills += 1;
        }
    }

    /// Emulates an unaligned load/store byte-by-byte with kernel rights,
    /// then resumes past it (the Ultrix fixup path). Uses the same
    /// branch-delay-slot machinery as the subpage engine.
    ///
    /// # Errors
    ///
    /// Fails if the faulting instruction cannot be fetched/decoded, if the
    /// access is not a load/store, or if the target pages are unmapped —
    /// callers then fall through to normal signal delivery.
    fn fixup_unaligned_access(&mut self, bad: u32, epc: u32, bd: bool) -> Result<(), KernelError> {
        let access_pc = if bd { epc.wrapping_add(4) } else { epc };
        let word = self
            .machine
            .peek_u32(access_pc, false)
            .map_err(|e| KernelError::KernelFault(e.to_string()))?;
        let inst = decode(word).map_err(|e| KernelError::KernelFault(e.to_string()))?;

        // Resolve where execution continues BEFORE emulating the access: a
        // fixed-up load may write the very register the branch reads (e.g.
        // `jr $t1` with `lw $t1, ...` in its delay slot), and the branch
        // architecturally consumed the old value when it executed.
        let next = if bd {
            self.machine.charge_cycles(costs::SUBPAGE_EMULATE_BRANCH);
            self.emulated_branch_target(epc)?
        } else {
            epc.wrapping_add(4)
        };

        use Instruction::*;
        // Byte-wise access through the page table (may straddle a page).
        match inst {
            Lw { rt, .. } | Lh { rt, .. } | Lhu { rt, .. } => {
                let width = if matches!(inst, Lw { .. }) { 4 } else { 2 };
                let bytes = self.host_read_bytes(bad, width)?;
                let mut v: u32 = 0;
                for (i, b) in bytes.iter().enumerate() {
                    v |= u32::from(*b) << (8 * i);
                }
                let v = match inst {
                    Lh { .. } => v as u16 as i16 as i32 as u32,
                    _ => v,
                };
                self.machine.cpu_mut().set_reg(rt, v);
            }
            Sw { rt, .. } | Sh { rt, .. } => {
                let width = if matches!(inst, Sw { .. }) { 4 } else { 2 };
                let v = self.machine.cpu().reg(rt);
                self.host_write_bytes(bad, &v.to_le_bytes()[..width])?;
            }
            other => return Err(KernelError::KernelFault(format!("cannot fix up {other}"))),
        }
        // The fixup costs a full kernel entry plus the emulation work; the
        // paper's point is that this is still cheaper than a signal but far
        // from free.
        self.machine
            .charge_cycles(costs::SUBPAGE_EMULATE + costs::SUBPAGE_EMULATE / 2);
        self.resume_user_at(next);
        Ok(())
    }

    // --- subpage emulation ----------------------------------------------------

    /// Emulates a faulting access in an unprotected logical subpage
    /// (Section 3.2.4), including the branch when the access sits in a
    /// branch delay slot, then resumes the program past it.
    fn emulate_subpage_access(&mut self, bad: u32, epc: u32, bd: bool) -> Result<(), KernelError> {
        self.machine.charge_cycles(costs::SUBPAGE_EMULATE);
        let access_pc = if bd { epc.wrapping_add(4) } else { epc };
        let word = self
            .machine
            .peek_u32(access_pc, false)
            .map_err(|e| KernelError::KernelFault(format!("cannot fetch for emulation: {e}")))?;
        let inst = decode(word)
            .map_err(|e| KernelError::KernelFault(format!("cannot decode for emulation: {e}")))?;

        // Resolve the branch BEFORE emulating the access: an emulated load
        // may clobber the branch's source register (`jr $t1` with
        // `lw $t1, ...` in the slot), and the branch architecturally read
        // the pre-load value when it executed. Doing this first also means
        // unemulatable shapes error out before any state is mutated.
        let next = if bd {
            self.machine.charge_cycles(costs::SUBPAGE_EMULATE_BRANCH);
            self.emulated_branch_target(epc)?
        } else {
            epc.wrapping_add(4)
        };

        // Perform the access with kernel rights, straight at the frame.
        let (pfn, _) = self
            .proc
            .space_mut()
            .ensure_resident(bad, &mut self.frames)?;
        let paddr = (pfn << 12) | (bad & (PAGE_SIZE - 1));
        use Instruction::*;
        match inst {
            Sw { rt, .. } => {
                let v = self.machine.cpu().reg(rt);
                let _ = self.machine.mem_mut().write_u32(paddr, v);
            }
            Sh { rt, .. } => {
                let v = self.machine.cpu().reg(rt) as u16;
                let _ = self.machine.mem_mut().write_u16(paddr, v);
            }
            Sb { rt, .. } => {
                let v = self.machine.cpu().reg(rt) as u8;
                let _ = self.machine.mem_mut().write_u8(paddr, v);
            }
            Lw { rt, .. } => {
                let v = self.machine.mem().read_u32(paddr).unwrap_or(0);
                self.machine.cpu_mut().set_reg(rt, v);
            }
            Lh { rt, .. } => {
                let v = self.machine.mem().read_u16(paddr).unwrap_or(0) as i16 as i32 as u32;
                self.machine.cpu_mut().set_reg(rt, v);
            }
            Lhu { rt, .. } => {
                let v = u32::from(self.machine.mem().read_u16(paddr).unwrap_or(0));
                self.machine.cpu_mut().set_reg(rt, v);
            }
            Lb { rt, .. } => {
                let v = self.machine.mem().read_u8(paddr).unwrap_or(0) as i8 as i32 as u32;
                self.machine.cpu_mut().set_reg(rt, v);
            }
            Lbu { rt, .. } => {
                let v = u32::from(self.machine.mem().read_u8(paddr).unwrap_or(0));
                self.machine.cpu_mut().set_reg(rt, v);
            }
            other => {
                return Err(KernelError::KernelFault(format!(
                    "unexpected instruction {other} in subpage emulation"
                )))
            }
        }
        self.proc.stats.subpage_emulations += 1;

        // Continue past the access: sequentially, or at the branch target
        // resolved above when the access sat in a delay slot (the paper
        // calls this case out).
        self.resume_user_at(next);
        Ok(())
    }

    /// Computes where the branch at `branch_pc` goes, given current
    /// register state. The branch executed before its delay slot faulted,
    /// so its *condition and target* registers still hold the values the
    /// branch read — EXCEPT when the branch itself wrote its own source
    /// (`jalr $rd, $rd`, or `bltzal`/`bgezal` testing `$ra`): the link
    /// write already clobbered the value, the shape is architecturally
    /// unpredictable, and re-evaluation would silently mis-resume. Those
    /// shapes get a typed [`KernelError::Delivery`] diagnostic instead.
    /// This must be called BEFORE the delay-slot access is emulated (a load
    /// in the slot may overwrite the branch's registers).
    fn emulated_branch_target(&mut self, branch_pc: u32) -> Result<u32, KernelError> {
        let word = self
            .machine
            .peek_u32(branch_pc, false)
            .map_err(|e| KernelError::KernelFault(format!("cannot fetch branch: {e}")))?;
        let inst = decode(word)
            .map_err(|e| KernelError::KernelFault(format!("cannot decode branch: {e}")))?;
        let cpu = self.machine.cpu();
        let reg = |r: Reg| cpu.reg(r);
        let rel = |imm: i16| {
            branch_pc
                .wrapping_add(4)
                .wrapping_add((i32::from(imm) << 2) as u32)
        };
        let seq = branch_pc.wrapping_add(8);
        use Instruction::*;
        let target = match inst {
            Jalr { rd, rs } if rd == rs => {
                return Err(KernelError::Delivery {
                    reason: format!(
                        "jalr with rd == rs ({rs}) at {branch_pc:#010x}: link write clobbered \
                         the jump target; architecturally unpredictable"
                    ),
                    epc: branch_pc,
                });
            }
            Bltzal { rs, .. } | Bgezal { rs, .. } if rs == Reg::RA => {
                return Err(KernelError::Delivery {
                    reason: format!(
                        "branch-and-link testing $ra at {branch_pc:#010x}: link write clobbered \
                         the condition; architecturally unpredictable"
                    ),
                    epc: branch_pc,
                });
            }
            Beq { rs, rt, imm } => {
                if reg(rs) == reg(rt) {
                    rel(imm)
                } else {
                    seq
                }
            }
            Bne { rs, rt, imm } => {
                if reg(rs) != reg(rt) {
                    rel(imm)
                } else {
                    seq
                }
            }
            Blez { rs, imm } => {
                if (reg(rs) as i32) <= 0 {
                    rel(imm)
                } else {
                    seq
                }
            }
            Bgtz { rs, imm } => {
                if (reg(rs) as i32) > 0 {
                    rel(imm)
                } else {
                    seq
                }
            }
            Bltz { rs, imm } | Bltzal { rs, imm } => {
                if (reg(rs) as i32) < 0 {
                    rel(imm)
                } else {
                    seq
                }
            }
            Bgez { rs, imm } | Bgezal { rs, imm } => {
                if (reg(rs) as i32) >= 0 {
                    rel(imm)
                } else {
                    seq
                }
            }
            J { target } | Jal { target } => {
                (branch_pc.wrapping_add(4) & 0xf000_0000) | (target << 2)
            }
            Jr { rs } | Jalr { rs, .. } => reg(rs),
            other => {
                return Err(KernelError::KernelFault(format!(
                    "instruction {other} is not a branch"
                )))
            }
        };
        Ok(target)
    }

    // --- syscall dispatch -------------------------------------------------------

    fn dispatch_syscall(&mut self) -> Result<Option<RunOutcome>, KernelError> {
        self.proc.stats.syscalls += 1;
        let cpu = self.machine.cpu();
        let num = cpu.reg(Reg::V0);
        let (a0, a1, a2) = (cpu.reg(Reg::A0), cpu.reg(Reg::A1), cpu.reg(Reg::A2));
        let next = self.machine.cp0().epc.wrapping_add(4);

        let mut ret: i32 = 0;
        match num {
            nr::GETPID => {
                self.machine.charge_cycles(costs::ULTRIX_SYSCALL_WRAPPER);
                ret = self.proc.pid() as i32;
            }
            nr::EXIT => {
                return Ok(Some(RunOutcome::Exited(a0 as i32)));
            }
            nr::WRITE => {
                self.machine
                    .charge_cycles(costs::ULTRIX_SYSCALL_WRAPPER + u64::from(a1));
                match self.host_read_bytes(a0, a1 as usize) {
                    Ok(bytes) => {
                        self.console.extend_from_slice(&bytes);
                        ret = a1 as i32;
                    }
                    Err(_) => ret = -errno::EFAULT,
                }
            }
            nr::SIGACTION => {
                self.machine.charge_cycles(costs::ULTRIX_SYSCALL_WRAPPER);
                match Signal::from_number(a0) {
                    Some(sig) => {
                        // a1 = 0: SIG_DFL; a1 = 1: SIG_IGN; else handler.
                        let d = match a1 {
                            0 => signals::Disposition::Default,
                            1 => signals::Disposition::Ignore,
                            h => signals::Disposition::Handler(h),
                        };
                        self.proc.signals.set_disposition(sig, d);
                    }
                    None => ret = -errno::EINVAL,
                }
            }
            nr::SIGRETURN => {
                let t_ret = self.machine.cycles();
                if let Some(&(class, code, _)) = self.unix_pending.last() {
                    let epc = self.machine.cp0().epc;
                    self.trace_emit(
                        EventKind::HandlerReturned,
                        TracePath::UnixSignals,
                        class,
                        code,
                        0,
                        epc,
                    );
                }
                self.machine.charge_cycles(costs::ULTRIX_SIGRETURN);
                match signals::read_sigcontext(&mut self.machine, a0) {
                    Ok(pc) => {
                        self.resume_user_at(pc);
                        if let Some((class, code, t_entered)) = self.unix_pending.pop() {
                            let path = TracePath::UnixSignals;
                            self.metrics.record_handler(
                                path,
                                class,
                                t_ret.saturating_sub(t_entered),
                            );
                            self.trace_emit(EventKind::Resumed, path, class, code, 0, pc);
                            self.metrics
                                .record_return(path, class, self.machine.cycles() - t_ret);
                        }
                        return Ok(None);
                    }
                    Err(_) => return Ok(Some(RunOutcome::Terminated(Signal::Segv))),
                }
            }
            nr::MPROTECT => match prot_from_arg(a2) {
                Some(prot) => {
                    if self.sys_mprotect(a0, a1, prot).is_err() {
                        ret = -errno::EINVAL;
                    }
                    self.proc.stats.syscalls -= 1; // sys_mprotect counted it
                }
                None => ret = -errno::EINVAL,
            },
            nr::UEXC_ENABLE => {
                self.machine.charge_cycles(costs::ULTRIX_SYSCALL_WRAPPER);
                ret = self.sys_uexc_enable(a0, a1, a2);
            }
            nr::UEXC_DISABLE => {
                self.machine.charge_cycles(costs::ULTRIX_SYSCALL_WRAPPER);
                self.proc.fast.enabled_mask = 0;
                self.sync_uarea();
            }
            nr::UEXC_PROTECT => match prot_from_arg(a2) {
                Some(prot) => {
                    if self.sys_uexc_protect(a0, a1, prot).is_err() {
                        ret = -errno::EINVAL;
                    }
                    self.proc.stats.syscalls -= 1;
                }
                None => ret = -errno::EINVAL,
            },
            nr::UEXC_SETEAGER => {
                self.machine.charge_cycles(costs::FAST_PROTECT_SYSCALL);
                self.proc.fast.eager_amplification = a0 != 0;
            }
            nr::SUBPAGE_PROTECT => {
                if self.sys_subpage_protect(a0, a1, a2 != 0).is_err() {
                    ret = -errno::EINVAL;
                } else {
                    self.proc.stats.syscalls -= 1;
                }
            }
            nr::TLB_GRANT => {
                if self.sys_tlb_grant(a0, a1, a2 != 0).is_err() {
                    ret = -errno::EINVAL;
                } else {
                    self.proc.stats.syscalls -= 1;
                }
            }
            nr::SBRK => {
                self.machine.charge_cycles(costs::ULTRIX_SYSCALL_WRAPPER);
                let old = self.proc.brk;
                let len = (a0 + PAGE_SIZE - 1) & !(PAGE_SIZE - 1);
                match self.proc.space_mut().map_region(old, len, Prot::ReadWrite) {
                    Ok(()) => {
                        self.proc.brk = old + len;
                        ret = old as i32;
                    }
                    Err(_) => ret = -errno::ENOMEM,
                }
            }
            _ => ret = -errno::ENOSYS,
        }
        self.machine.cpu_mut().set_reg(Reg::V0, ret as u32);
        self.resume_user_at(next);
        Ok(None)
    }

    /// The `uexc_enable` kernel half: validate the mask, map and pin the
    /// communication page, record the handler, and publish the state to the
    /// u-area the guest fast path reads.
    fn sys_uexc_enable(&mut self, mask: u32, handler: u32, comm_vaddr: u32) -> i32 {
        if mask & !crate::fastexc::FastExcState::allowed_mask() != 0 {
            return -errno::EINVAL;
        }
        if !comm_vaddr.is_multiple_of(PAGE_SIZE) || comm_vaddr >= 0x8000_0000 {
            return -errno::EINVAL;
        }
        if self.proc.space().pte(comm_vaddr).is_none()
            && self
                .proc
                .space_mut()
                .map_region(comm_vaddr, PAGE_SIZE, Prot::ReadWrite)
                .is_err()
        {
            return -errno::EINVAL;
        }
        let Ok((pfn, _)) = self
            .proc
            .space_mut()
            .ensure_resident(comm_vaddr, &mut self.frames)
        else {
            return -errno::ENOMEM;
        };
        let _ = self
            .proc
            .space_mut()
            .set_pinned(comm_vaddr, PAGE_SIZE, true);
        self.proc.fast.enabled_mask = mask;
        self.proc.fast.handler = handler;
        self.proc.fast.comm_vaddr = comm_vaddr;
        self.proc.fast.comm_kseg0 = 0x8000_0000 | (pfn << 12);
        self.sync_uarea();
        0
    }

    /// Publishes the current process's fast-exception state into the fixed
    /// KSEG0 u-area the guest handler reads.
    pub fn sync_uarea(&mut self) {
        // UAREA_VADDR is a compile-time KSEG0 constant; translate inline
        // rather than unwrapping.
        let paddr = layout::UAREA_VADDR & 0x1fff_ffff;
        let f = &self.proc.fast;
        let mem = self.machine.mem_mut();
        let _ = mem.write_u32(paddr + layout::uarea::ENABLED_MASK, f.enabled_mask);
        let _ = mem.write_u32(paddr + layout::uarea::HANDLER, f.handler);
        let _ = mem.write_u32(paddr + layout::uarea::COMM_KSEG0, f.comm_kseg0);
        let _ = mem.write_u32(paddr + layout::uarea::FLAGS, 0);
    }
}

/// Attaches context to an error message (internal convenience).
trait TapMsg {
    fn tap_msg(self, msg: String) -> Self;
}

impl TapMsg for KernelError {
    fn tap_msg(self, msg: String) -> KernelError {
        match self {
            KernelError::Map(_) => KernelError::KernelFault(msg),
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boot() -> Kernel {
        Kernel::boot(KernelConfig::default()).expect("boot")
    }

    #[test]
    fn boots_and_loads_kernel_image() {
        let k = boot();
        assert!(k.kernel_symbol("fexc_decode").is_some());
        // The general vector holds the first decode instruction.
        let w = k.machine.mem().read_u32(0x80).unwrap();
        assert_ne!(w, 0, "vector must contain code");
    }

    #[test]
    fn runs_a_trivial_program_to_exit() {
        let mut k = boot();
        let prog = k
            .load_user_program(
                r#"
                .org 0x00400000
                main:
                    li $a0, 7
                    li $v0, 2      # exit
                    syscall
                    nop
            "#,
            )
            .unwrap();
        let sp = k.setup_stack(4).unwrap();
        k.exec(prog.entry(), sp);
        let out = k.run_user(10_000).unwrap();
        assert_eq!(out, RunOutcome::Exited(7));
    }

    #[test]
    fn getpid_returns_pid_and_charges_wrapper() {
        let mut k = boot();
        let prog = k
            .load_user_program(
                r#"
                .org 0x00400000
                main:
                    li $v0, 1
                    syscall
                    move $a0, $v0
                    li $v0, 2
                    syscall
                    nop
            "#,
            )
            .unwrap();
        let sp = k.setup_stack(4).unwrap();
        k.exec(prog.entry(), sp);
        let before = k.cycles();
        let out = k.run_user(10_000).unwrap();
        assert_eq!(out, RunOutcome::Exited(1), "pid is 1");
        assert!(k.cycles() - before >= costs::ULTRIX_SYSCALL_WRAPPER);
    }

    #[test]
    fn console_write_syscall() {
        let mut k = boot();
        let prog = k
            .load_user_program(
                r#"
                .org 0x00400000
                main:
                    la $a0, msg
                    li $a1, 5
                    li $v0, 3      # write
                    syscall
                    li $v0, 2
                    syscall
                    nop
                msg: .asciiz "hello"
            "#,
            )
            .unwrap();
        let sp = k.setup_stack(4).unwrap();
        k.exec(prog.entry(), sp);
        k.run_user(10_000).unwrap();
        assert_eq!(k.console(), b"hello");
    }

    #[test]
    fn unhandled_fault_terminates() {
        let mut k = boot();
        let prog = k
            .load_user_program(
                r#"
                .org 0x00400000
                main:
                    lw $t0, 2($zero)   # unaligned -> SIGBUS, no handler
                    nop
            "#,
            )
            .unwrap();
        let sp = k.setup_stack(4).unwrap();
        k.exec(prog.entry(), sp);
        let out = k.run_user(10_000).unwrap();
        assert_eq!(out, RunOutcome::Terminated(Signal::Bus));
    }

    #[test]
    fn unix_signal_handler_runs_and_returns() {
        let mut k = boot();
        // Handler advances the saved PC past the faulting instruction
        // (sigcontext PC is at offset 34*4 = 136).
        let prog = k
            .load_user_program(
                r#"
                .org 0x00400000
                main:
                    la  $a1, handler
                    li  $a0, 10        # SIGBUS
                    li  $v0, 4         # sigaction
                    syscall
                    lw  $t0, 2($zero)  # unaligned -> SIGBUS
                    li  $s1, 99        # must run after handler returns
                    li  $v0, 2
                    move $a0, $s1
                    syscall
                    nop
                handler:
                    lw  $t1, 136($a2)  # saved pc
                    addiu $t1, $t1, 4  # skip the faulting lw
                    sw  $t1, 136($a2)
                    jr  $ra
                    nop
            "#,
            )
            .unwrap();
        let sp = k.setup_stack(4).unwrap();
        k.exec(prog.entry(), sp);
        let out = k.run_user(100_000).unwrap();
        assert_eq!(out, RunOutcome::Exited(99));
        assert_eq!(k.process().stats.signals_delivered, 1);
    }

    #[test]
    fn fast_path_delivers_breakpoint_without_host() {
        let mut k = boot();
        let mask = 1 << ExcCode::Breakpoint.code();
        let prog = k
            .load_user_program(&format!(
                r#"
                .org 0x00400000
                main:
                    li  $a0, {mask}
                    la  $a1, fast_handler
                    li  $a2, 0x7ffe0000  # comm page
                    li  $v0, 7           # uexc_enable
                    syscall
                    break 0
                    li  $s1, 55          # runs after handler jumps back
                    move $a0, $s1
                    li  $v0, 2
                    syscall
                    nop
                fast_handler:
                    # comm frame for breakpoint (code 9) at comm + 9*32
                    li  $t0, 0x7ffe0000
                    lw  $t1, 288($t0)    # saved EPC
                    addiu $t1, $t1, 4    # skip the break
                    jr  $t1              # return directly -- no kernel
                    nop
            "#,
            ))
            .unwrap();
        let sp = k.setup_stack(4).unwrap();
        k.exec(prog.entry(), sp);
        let out = k.run_user(100_000).unwrap();
        assert_eq!(out, RunOutcome::Exited(55));
        // No signal machinery involved.
        assert_eq!(k.process().stats.signals_delivered, 0);
    }

    #[test]
    fn nested_signal_delivery_preserves_outer_context() {
        // Satellite: the recursive-exception window. A SIGBUS handler
        // itself takes an unaligned fault (second delivery while the first
        // is in flight). The kernel stacks sigcontexts on the user stack
        // and must stack its own in-flight bookkeeping the same way — the
        // inner delivery must not clobber the outer one's saved state.
        let mut k = boot();
        let prog = k
            .load_user_program(
                r#"
                .org 0x00400000
                main:
                    la  $a1, outer
                    li  $a0, 10        # SIGBUS
                    li  $v0, 4         # sigaction
                    syscall
                    lw  $t0, 2($zero)  # unaligned -> SIGBUS (outer)
                    la  $t2, mark      # register writes don't survive
                    lw  $a0, 0($t2)    # sigreturn; the mark lives in memory
                    li  $v0, 2
                    syscall
                    nop
                outer:
                    la  $t2, depth
                    lw  $t3, 0($t2)
                    bne $t3, $zero, inner_body
                    nop
                    # First (outer) activation: note the depth, then fault
                    # AGAIN inside the handler.
                    li  $t3, 1
                    sw  $t3, 0($t2)
                    lw  $t0, 6($zero)  # unaligned -> SIGBUS (inner, nested)
                    # after inner handler returns here:
                    lw  $t1, 136($a2)  # outer saved pc
                    addiu $t1, $t1, 4  # skip the original faulting lw
                    sw  $t1, 136($a2)
                    jr  $ra
                    nop
                inner_body:
                    la  $t2, mark      # mark in memory: inner handler ran
                    li  $t3, 42
                    sw  $t3, 0($t2)
                    lw  $t1, 136($a2)  # inner saved pc (inside outer handler)
                    addiu $t1, $t1, 4  # skip the nested faulting lw
                    sw  $t1, 136($a2)
                    jr  $ra
                    nop
                depth: .word 0
                mark:  .word 0
            "#,
            )
            .unwrap();
        let sp = k.setup_stack(8).unwrap();
        k.exec(prog.entry(), sp);
        let out = k.run_user(1_000_000).unwrap();
        assert_eq!(out, RunOutcome::Exited(42), "both activations completed");
        assert_eq!(k.process().stats.signals_delivered, 2);
    }

    /// Program whose fast path delivers a TlbMod (write-protect) fault;
    /// the handler skips the faulting store and execution exits 55.
    const TLBMOD_FAST_PROGRAM: &str = r#"
        .org 0x00400000
        main:
            li  $a0, 0x02            # 1 << TlbMod
            la  $a1, fast_handler
            li  $a2, 0x7ffe0000
            li  $v0, 7               # uexc_enable
            syscall
            li  $a0, 8192
            li  $v0, 13              # sbrk
            syscall
            move $s1, $v0
            sw  $zero, 0($s1)        # resident + writable
            move $a0, $s1
            li  $a1, 4096
            li  $a2, 1               # PROT_READ
            li  $v0, 9               # uexc_protect
            syscall
            sw  $s1, 0($s1)          # TlbMod -> fast delivery
            li  $a0, 55
            li  $v0, 2
            syscall
            nop
        fast_handler:
            li  $t0, 0x7ffe0000
            lw  $t1, 0x20($t0)       # TlbMod frame EPC
            addiu $t1, $t1, 4        # skip the store
            jr  $t1
            nop
    "#;

    #[test]
    fn evict_handler_tlb_injection_recovers_via_refill() {
        // Mid-delivery TLB eviction of the handler's page: the resume must
        // come back through the slow refill path and still reach the
        // handler — bit-exact recovery, extra refill cycles.
        let mut k = boot();
        let prog = k.load_user_program(TLBMOD_FAST_PROGRAM).unwrap();
        let sp = k.setup_stack(4).unwrap();
        k.exec(prog.entry(), sp);
        k.inject(InjectAction::EvictHandlerTlb);
        let out = k.run_user(1_000_000).unwrap();
        assert_eq!(out, RunOutcome::Exited(55));
        assert_eq!(k.process().stats.fast_delivered, 1);
        assert_eq!(k.process().stats.degraded_deliveries, 0, "bit-exact");
    }

    #[test]
    fn evicted_comm_page_degrades_to_unix_path_not_wedge() {
        // Pinning violation before a fast delivery: the kernel must detect
        // the lie, repair the page, count the degradation, and deliver via
        // Unix signals. With no signal handler the process dies with a
        // diagnostic — never a hang, never a host panic.
        let mut k = boot();
        let prog = k.load_user_program(TLBMOD_FAST_PROGRAM).unwrap();
        let sp = k.setup_stack(4).unwrap();
        k.exec(prog.entry(), sp);
        k.inject(InjectAction::EvictCommPage);
        let out = k.run_user(1_000_000).unwrap();
        assert_eq!(out, RunOutcome::Terminated(Signal::Segv));
        assert_eq!(k.process().stats.degraded_deliveries, 1);
        assert_eq!(k.process().stats.fast_delivered, 0);
        assert!(k.last_diagnostic().is_some());
    }

    #[test]
    fn comm_page_eviction_between_break_and_handler_read_recovers() {
        // The hardest pinning-violation window: a breakpoint is delivered
        // entirely by the guest vector (the host never runs), the comm
        // frame is written through the KSEG0 alias, and THEN the page is
        // evicted before the user handler's comm-page load. The load
        // misses, and the host refill path must notice the violated pin,
        // restore the frame CONTENTS from the stale alias, and resume —
        // bit-exact recovery through the slow path.
        let mut k = boot();
        let mask = 1 << ExcCode::Breakpoint.code();
        let prog = k
            .load_user_program(&format!(
                r#"
                .org 0x00400000
                main:
                    li  $a0, {mask}
                    la  $a1, fast_handler
                    li  $a2, 0x7ffe0000
                    li  $v0, 7           # uexc_enable
                    syscall
                    break 0
                    li  $a0, 55
                    li  $v0, 2
                    syscall
                    nop
                fast_handler:
                    li  $t0, 0x7ffe0000
                    lw  $t1, 288($t0)    # breakpoint frame EPC
                    addiu $t1, $t1, 4
                    jr  $t1
                    nop
            "#,
            ))
            .unwrap();
        let sp = k.setup_stack(4).unwrap();
        k.exec(prog.entry(), sp);
        // Step until the fast path is armed, then yank the comm page out
        // from under the guest mid-flight.
        let mut steps = 0;
        while k.process().fast.comm_kseg0 == 0 {
            assert_eq!(k.run_user(1).unwrap(), RunOutcome::StepLimit);
            steps += 1;
            assert!(steps < 10_000, "uexc_enable never armed");
        }
        k.inject_evict_comm_page();
        let out = k.run_user(1_000_000).unwrap();
        assert_eq!(out, RunOutcome::Exited(55), "recovered bit-exact");
        assert_eq!(k.process().stats.degraded_deliveries, 1);
        assert!(k
            .last_diagnostic()
            .expect("diagnostic recorded")
            .contains("repaired"));
    }

    #[test]
    fn sbrk_grows_heap() {
        let mut k = boot();
        let prog = k
            .load_user_program(
                r#"
                .org 0x00400000
                main:
                    li  $a0, 8192
                    li  $v0, 13        # sbrk
                    syscall
                    move $t0, $v0      # old break
                    li  $t1, 1234
                    sw  $t1, 0($t0)    # touch the new heap (page fault path)
                    lw  $a0, 0($t0)
                    li  $v0, 2
                    syscall
                    nop
            "#,
            )
            .unwrap();
        let sp = k.setup_stack(4).unwrap();
        k.exec(prog.entry(), sp);
        let out = k.run_user(100_000).unwrap();
        assert_eq!(out, RunOutcome::Exited(1234));
        assert!(k.process().stats.page_faults >= 1);
        assert!(k.process().stats.tlb_refills >= 1);
    }

    #[test]
    fn host_access_services_page_faults_silently() {
        let mut k = boot();
        k.map_user_region(0x1000_0000, 2 * PAGE_SIZE, Prot::ReadWrite)
            .unwrap();
        k.host_store_u32(0x1000_0010, 0xabcd).unwrap();
        assert_eq!(k.host_load_u32(0x1000_0010).unwrap(), 0xabcd);
        assert_eq!(k.process().stats.page_faults, 1);
    }

    #[test]
    fn host_access_reports_protection_faults() {
        let mut k = boot();
        k.map_user_region(0x1000_0000, PAGE_SIZE, Prot::Read)
            .unwrap();
        let err = k.host_store_u32(0x1000_0000, 1).unwrap_err();
        assert_eq!(err.kind, FaultKind::Protection);
        assert_eq!(err.code, ExcCode::TlbMod);
        assert!(err.write);
        // Reads still work.
        assert!(k.host_load_u32(0x1000_0000).is_ok());
        // Unmapped.
        let err = k.host_load_u32(0x2000_0000).unwrap_err();
        assert_eq!(err.kind, FaultKind::NotMapped);
        // Unaligned.
        let err = k.host_load_u32(0x1000_0002).unwrap_err();
        assert_eq!(err.code, ExcCode::AddrErrLoad);
    }

    #[test]
    fn mprotect_changes_future_classification() {
        let mut k = boot();
        k.map_user_region(0x1000_0000, PAGE_SIZE, Prot::ReadWrite)
            .unwrap();
        k.host_store_u32(0x1000_0000, 5).unwrap();
        k.sys_mprotect(0x1000_0000, PAGE_SIZE, Prot::Read).unwrap();
        assert!(k.host_store_u32(0x1000_0000, 6).is_err());
        k.sys_uexc_protect(0x1000_0000, PAGE_SIZE, Prot::ReadWrite)
            .unwrap();
        assert!(k.host_store_u32(0x1000_0000, 6).is_ok());
    }
}
