//! Cycle-cost calibration for the host-modeled kernel services.
//!
//! The guest-assembly parts of the kernel (the fast-path handler, the
//! trampoline, user handlers) are *executed* and cost what their
//! instructions cost. The parts of the conventional Ultrix kernel we model
//! functionally at host level charge the constants below, expressed in
//! 25 MHz cycles (1 cycle = 0.04 µs).
//!
//! ## Calibration anchors (all from the paper)
//!
//! | anchor | paper | constant(s) |
//! |---|---|---|
//! | Ultrix null syscall | 12 µs (300 cy) | [`ULTRIX_SYSCALL_WRAPPER`] |
//! | Ultrix simple-exception round trip | ~80 µs (2000 cy) | sum of the `ULTRIX_*` phases + executed guest code |
//! | Ultrix write-protect delivery | ~60 µs (1500 cy) | adds [`ULTRIX_VM_FAULT_WORK`], but skips part of signal frame work |
//! | fast-path write-protect delivery | 15 µs (375 cy) | [`FAST_TLBFAULT_KERNEL`] on top of the executed fast path |
//! | fast-path subpage delivery | 19 µs (475 cy) | adds [`SUBPAGE_LOOKUP`] |
//! | fault + re-enable with eager amplification | 18 µs | [`FAST_PROTECT_SYSCALL`] |
//! | kernel instruction-emulation (unprotected subpage) | — | [`SUBPAGE_EMULATE`] |

/// Ultrix low-level exception entry: initialize the kernel stack and save
/// all user registers (some twice, as the paper notes), re-enable
/// exceptions, call the C handler.
pub const ULTRIX_EXC_SAVE: u64 = 350;

/// Posting phase: translate the hardware code into a Unix signal and post
/// it to the process (procfs locking, signal masks…).
pub const ULTRIX_POST: u64 = 300;

/// Recognition + delivery phase: locate the handler, build the sigcontext
/// on the user stack, rewrite the saved exception state to enter the
/// trampoline.
pub const ULTRIX_DELIVER: u64 = 550;

/// `sigreturn`: re-enter the kernel, validate and restore the sigcontext,
/// return to the faulting instruction.
pub const ULTRIX_SIGRETURN: u64 = 700;

/// Extra kernel work when the Ultrix-path exception is a VM fault (reading
/// page tables, checking shared memory, `mprotect` bookkeeping).
pub const ULTRIX_VM_FAULT_WORK: u64 = 450;

/// The general-purpose Ultrix system call wrapper (entry + exit), the
/// 12 µs null-syscall anchor.
pub const ULTRIX_SYSCALL_WRAPPER: u64 = 300;

/// Ultrix `mprotect`: wrapper plus per-page page-table and TLB work.
pub const ULTRIX_MPROTECT_PER_PAGE: u64 = 60;

/// Fast path: extra kernel work for TLB-related exceptions — the C-language
/// routine that reads per-process page tables and validates the fault
/// (Section 3.2.2 explains why these cost 15 µs rather than 5 µs).
pub const FAST_TLBFAULT_KERNEL: u64 = 230;

/// Fast path: the lean protection-change system call used to re-enable
/// protection after an eager-amplified fault (3 µs; the 18 µs
/// fault-plus-re-enable anchor minus the 15 µs fault).
pub const FAST_PROTECT_SYSCALL: u64 = 75;

/// Subpage engine: bitmap lookup to classify the faulting subpage
/// (the 19 µs vs 15 µs delta in Table 2).
pub const SUBPAGE_LOOKUP: u64 = 100;

/// Subpage engine: emulate one faulting load/store with kernel rights
/// (decode + access + writeback), excluding branch emulation.
pub const SUBPAGE_EMULATE: u64 = 80;

/// Subpage engine: additional branch emulation when the access sits in a
/// branch delay slot.
pub const SUBPAGE_EMULATE_BRANCH: u64 = 30;

/// TLB refill from the page table (the R3000's ~9-instruction UTLB
/// handler).
pub const TLB_REFILL: u64 = 12;

/// Equivalent of the guest fast-path phases (decode/compat/save/fpcheck/
/// tlbcheck) charged when a delivery is completed from the host refill path
/// — where the guest phases did not actually execute.
pub const FAST_GUEST_PHASES_EQUIV: u64 = 45;

/// Equivalent of the 17-instruction decode+compat overhead charged when a
/// standard-path delivery starts from the host refill path.
pub const ULTRIX_GUEST_PHASES_EQUIV: u64 = 20;

/// Page-in from the simulated disk (dominated by 1994 disk latency;
/// ~8 ms at 25 MHz would be 200k cycles — we keep the default small so
/// paging tests run quickly, and it is configurable on the kernel).
pub const PAGE_IN_DEFAULT: u64 = 25_000;

#[cfg(test)]
mod tests {
    use efex_mips::cycles::{to_micros, CLOCK_MHZ};

    #[test]
    fn ultrix_round_trip_anchor_is_near_80us() {
        // Host-charged phases; executed guest code (trampoline + handler
        // call) adds roughly 100 cycles on top.
        let charged = super::ULTRIX_EXC_SAVE
            + super::ULTRIX_POST
            + super::ULTRIX_DELIVER
            + super::ULTRIX_SIGRETURN;
        let us = to_micros(charged + 100, CLOCK_MHZ);
        assert!((70.0..=90.0).contains(&us), "got {us}");
    }

    #[test]
    fn fast_protect_syscall_matches_eager_amplification_anchor() {
        // 15 us fault + 3 us re-enable = paper's 18 us.
        let us = to_micros(super::FAST_PROTECT_SYSCALL, CLOCK_MHZ);
        assert!((2.0..=4.0).contains(&us));
    }
}
