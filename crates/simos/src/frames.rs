//! Physical frame allocator.
//!
//! A simple free-list allocator over the frames above the kernel image.
//! Deterministic: frames are handed out in ascending order and freed frames
//! are reused LIFO.

use std::fmt;

/// A physical frame number (`paddr >> 12`).
pub type Pfn = u32;

/// Out of physical memory.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OutOfFrames;

impl fmt::Display for OutOfFrames {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("out of physical frames")
    }
}

impl std::error::Error for OutOfFrames {}

/// Allocates physical frames in `[first, limit)`.
#[derive(Clone, Debug)]
pub struct FrameAllocator {
    next: Pfn,
    limit: Pfn,
    free: Vec<Pfn>,
    allocated: u64,
}

impl FrameAllocator {
    /// An allocator over frames `[first, limit)`.
    pub fn new(first: Pfn, limit: Pfn) -> FrameAllocator {
        assert!(first <= limit, "first frame past limit");
        FrameAllocator {
            next: first,
            limit,
            free: Vec::new(),
            allocated: 0,
        }
    }

    /// Allocates one frame.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfFrames`] when memory is exhausted.
    pub fn alloc(&mut self) -> Result<Pfn, OutOfFrames> {
        let pfn = if let Some(p) = self.free.pop() {
            p
        } else if self.next < self.limit {
            let p = self.next;
            self.next += 1;
            p
        } else {
            return Err(OutOfFrames);
        };
        self.allocated += 1;
        Ok(pfn)
    }

    /// Returns a frame to the pool.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the frame was never handed out.
    pub fn free(&mut self, pfn: Pfn) {
        debug_assert!(
            pfn < self.next && !self.free.contains(&pfn),
            "bad free of {pfn}"
        );
        self.free.push(pfn);
    }

    /// Frames currently available without growing.
    pub fn available(&self) -> u64 {
        u64::from(self.limit - self.next) + self.free.len() as u64
    }

    /// Raw allocator state for checkpointing: `(next, limit, free list,
    /// total allocated)`. The free list's *order* matters — frees are
    /// reused LIFO, so a restored allocator must hand out the same frames
    /// in the same order as the one it was captured from.
    pub fn raw_state(&self) -> (Pfn, Pfn, &[Pfn], u64) {
        (self.next, self.limit, &self.free, self.allocated)
    }

    /// Rebuilds an allocator from checkpointed raw state.
    pub fn from_raw(next: Pfn, limit: Pfn, free: Vec<Pfn>, allocated: u64) -> FrameAllocator {
        FrameAllocator {
            next,
            limit,
            free,
            allocated,
        }
    }

    /// Total successful allocations (statistics).
    pub fn total_allocated(&self) -> u64 {
        self.allocated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_ascending_then_reuses() {
        let mut a = FrameAllocator::new(10, 13);
        assert_eq!(a.alloc(), Ok(10));
        assert_eq!(a.alloc(), Ok(11));
        a.free(10);
        assert_eq!(a.alloc(), Ok(10));
        assert_eq!(a.alloc(), Ok(12));
        assert_eq!(a.alloc(), Err(OutOfFrames));
    }

    #[test]
    fn available_tracks_state() {
        let mut a = FrameAllocator::new(0, 4);
        assert_eq!(a.available(), 4);
        let p = a.alloc().unwrap();
        assert_eq!(a.available(), 3);
        a.free(p);
        assert_eq!(a.available(), 4);
    }
}
