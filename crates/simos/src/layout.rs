//! The simulated system's memory layout.
//!
//! Kernel structures live in KSEG0 (unmapped, so the kernel's exception
//! handlers never take TLB misses on their own data — the property the
//! paper's fast path relies on). User structures live at conventional
//! Ultrix-like addresses in KUSEG.

/// Hardware page size (4 KB on the MIPS, as in the paper).
pub const PAGE_SIZE: u32 = efex_mips::tlb::PAGE_SIZE;

/// Logical subpage size for the subpage protection emulation (Section
/// 3.2.4): 1 KB.
pub const SUBPAGE_SIZE: u32 = 1024;

/// Subpages per hardware page.
pub const SUBPAGES_PER_PAGE: u32 = PAGE_SIZE / SUBPAGE_SIZE;

/// Default physical memory size: 16 MB, generous for a 1994 DECstation.
pub const DEFAULT_PHYS_BYTES: usize = 16 * 1024 * 1024;

// --- kernel (KSEG0 virtual addresses) ----------------------------------

/// The u-area: per-current-process data the guest fast-path handler reads.
/// Fixed KSEG0 address, rewritten by the host kernel on process switch.
pub const UAREA_VADDR: u32 = 0x8000_0a00;

/// U-area field offsets (bytes).
pub mod uarea {
    /// Bitmask of `ExcCode`s enabled for fast user-level delivery.
    pub const ENABLED_MASK: u32 = 0x00;
    /// User handler virtual address.
    pub const HANDLER: u32 = 0x04;
    /// KSEG0 alias of the pinned user communication page.
    pub const COMM_KSEG0: u32 = 0x08;
    /// Flags (bit 0: process uses the floating-point coprocessor).
    pub const FLAGS: u32 = 0x0c;
    /// Saved-at-exception scratch space used by the guest handler.
    pub const SCRATCH: u32 = 0x10;
}

/// Kernel code (fast-path handler body, trampolines' kernel side) starts
/// here, after the two hardware vectors.
pub const KERNEL_TEXT_VADDR: u32 = 0x8000_2000;

/// First physical frame handed to the allocator; everything below is
/// kernel image + vectors + u-area.
pub const FIRST_USER_FRAME: u32 = 0x0010_0000 / PAGE_SIZE;

// --- user space (KUSEG virtual addresses) -------------------------------

/// User text segment base.
pub const USER_TEXT_VADDR: u32 = 0x0040_0000;

/// User runtime support (signal trampoline + fast-path veneer) base.
pub const USER_RUNTIME_VADDR: u32 = 0x0041_0000;

/// User data/heap base.
pub const USER_DATA_VADDR: u32 = 0x1000_0000;

/// Top of the user stack (grows down).
pub const USER_STACK_TOP: u32 = 0x7fff_f000;

/// The pinned exception communication page (one 4 KB page, Section 3.2):
/// holds one exception frame per exception type.
pub const COMM_PAGE_VADDR: u32 = 0x7ffe_0000;

/// Byte offsets within one exception frame of the communication page.
/// There is one frame per `ExcCode`, each [`COMM_FRAME_SIZE`] bytes.
pub mod comm {
    /// Saved exception PC.
    pub const EPC: u32 = 0x00;
    /// Saved cause register.
    pub const CAUSE: u32 = 0x04;
    /// Saved bad virtual address (TLB/address exceptions).
    pub const BADVADDR: u32 = 0x08;
    /// Saved `$at`.
    pub const AT: u32 = 0x0c;
    /// Saved `$k0`.
    pub const K0: u32 = 0x10;
    /// Saved `$k1`.
    pub const K1: u32 = 0x14;
    /// In-progress flag (set by kernel on delivery; a nested exception of
    /// the same type overwrites the frame, as the paper notes).
    pub const ACTIVE: u32 = 0x18;
}

/// Size of one exception frame in the communication page.
pub const COMM_FRAME_SIZE: u32 = 0x20;

/// The communication-page frame address for one exception code.
pub fn comm_frame_vaddr(code: efex_mips::ExcCode) -> u32 {
    COMM_PAGE_VADDR + code.code() * COMM_FRAME_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;
    use efex_mips::ExcCode;

    #[test]
    fn comm_frames_fit_in_one_page() {
        let last = comm_frame_vaddr(ExcCode::Overflow) + COMM_FRAME_SIZE;
        assert!(last <= COMM_PAGE_VADDR + PAGE_SIZE);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // the point IS the constants
    fn layout_regions_do_not_overlap() {
        assert!(USER_TEXT_VADDR < USER_RUNTIME_VADDR);
        assert!(USER_RUNTIME_VADDR < USER_DATA_VADDR);
        assert!(USER_DATA_VADDR < COMM_PAGE_VADDR);
        assert!(COMM_PAGE_VADDR + PAGE_SIZE <= USER_STACK_TOP);
        assert!(
            UAREA_VADDR >= 0x8000_0200,
            "u-area must be clear of vectors"
        );
        assert!(UAREA_VADDR + 0x200 <= KERNEL_TEXT_VADDR);
    }

    #[test]
    fn subpage_constants() {
        assert_eq!(SUBPAGES_PER_PAGE, 4);
    }
}
