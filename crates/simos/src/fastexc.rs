//! The fast user-level exception path (Section 3.2 of the paper).
//!
//! The first-level handler is **guest assembly**, assembled at boot and
//! installed at the R3000 general exception vector. Its phases carry the
//! same names as the rows of the paper's Table 3 and are delimited by
//! labels (prefix `fexc_`), so a [`efex_mips::profile::Profiler`] can
//! measure the per-phase dynamic instruction counts.
//!
//! The handler:
//!
//! 1. **decode** — extracts the exception code and checks the fault came
//!    from user mode;
//! 2. **compat** — the "Ultrix compatibility check": tests the per-process
//!    enabled-exception mask in the u-area;
//! 3. **save** — saves the exception PC, cause, bad address, and the
//!    scratch registers (`$at`, `$a0`, `$a1`) it is about to use into the
//!    per-exception frame of the pinned communication page, addressed
//!    through its KSEG0 alias so the handler itself can never take a TLB
//!    miss;
//! 4. **fpcheck** — checks whether floating-point state would need saving;
//! 5. **tlbcheck** — TLB-type exceptions (protection faults) escape to the
//!    kernel's C-language routine, which must read page tables
//!    (Section 3.2.2);
//! 6. **vector** — loads the user handler address and returns from the
//!    exception straight into it.
//!
//! Anything that fails a check falls through to the standard (Ultrix-style)
//! path. The user handler returns by **jumping to the saved exception PC**
//! — no kernel re-entry, which is where the order-of-magnitude win comes
//! from.

use efex_mips::exception::ExcCode;

/// Per-process fast-exception state (established by the `uexc_enable`
/// system call).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FastExcState {
    /// Bitmask of enabled `ExcCode`s.
    pub enabled_mask: u32,
    /// User handler virtual address.
    pub handler: u32,
    /// User virtual address of the pinned communication page.
    pub comm_vaddr: u32,
    /// KSEG0 alias of the communication page's frame.
    pub comm_kseg0: u32,
    /// Eager amplification (Section 3.2.3): amplify page access before
    /// vectoring protection faults.
    pub eager_amplification: bool,
}

impl FastExcState {
    /// Disabled state.
    pub fn new() -> FastExcState {
        FastExcState::default()
    }

    /// Whether fast delivery is enabled for `code`.
    pub fn enabled_for(&self, code: ExcCode) -> bool {
        self.enabled_mask & (1 << code.code()) != 0
    }

    /// Exception codes a process is allowed to enable: every synchronous
    /// exception except system calls, coprocessor-unusable, and (per the
    /// paper) page faults — which are TLB exceptions the kernel filters
    /// later, so the TLB codes themselves are permitted here.
    pub fn allowed_mask() -> u32 {
        let mut mask = 0;
        for code in ExcCode::ALL {
            let allowed =
                code.is_synchronous() && !matches!(code, ExcCode::Syscall | ExcCode::CopUnusable);
            if allowed {
                mask |= 1 << code.code();
            }
        }
        mask
    }
}

/// Host-call numbers used by the guest kernel stubs.
pub mod hcalls {
    /// User TLB refill (from the UTLB vector).
    pub const UTLB_REFILL: u32 = 0;
    /// Standard-path exception processing (Ultrix-style signals, syscalls,
    /// kernel faults).
    pub const STANDARD_EXC: u32 = 1;
    /// Fast-path TLB-type exception: the kernel must consult page tables
    /// before completing user delivery.
    pub const FAST_TLB_EXC: u32 = 2;
}

/// The guest kernel image source: both hardware vectors plus the fast-path
/// handler. Phase labels `fexc_*` mark the Table 3 regions; `fexc_end`
/// marks the end of the handler for profiling.
pub const KERNEL_ASM: &str = r#"
# ---- efex simulated kernel: exception vectors -----------------------------

.org 0x80000000                 # UTLB refill vector (user-space TLB miss)
    hcall 0                     # host kernel refills from the page table

.org 0x80000080                 # general exception vector
# Phase 1: decode the exception --------------------------------------------
fexc_decode:
    mfc0  $k0, $cause
    srl   $k0, $k0, 2
    andi  $k0, $k0, 0x1f        # k0 = ExcCode
    mfc0  $k1, $status
    andi  $k1, $k1, 0x8         # KUp: did the fault come from user mode?
    beqz  $k1, fexc_fallback
    nop

# Phase 2: Ultrix compatibility check --------------------------------------
fexc_compat:
    lui   $k1, 0x8000
    ori   $k1, $k1, 0x0a00      # k1 = &u-area
    lw    $k1, 0($k1)           # enabled-exception mask
    srlv  $k1, $k1, $k0
    andi  $k1, $k1, 1
    beqz  $k1, fexc_fallback    # not enabled: standard path
    nop

# Phase 3: save partial state into the communication page ------------------
# The comm page is addressed through its KSEG0 alias, so no TLB miss can
# occur while the original exception state is still live in CP0.
fexc_save:
    lui   $k1, 0x8000
    ori   $k1, $k1, 0x0a00
    lw    $k1, 8($k1)           # KSEG0 alias of the comm page
    sll   $k0, $k0, 5           # frame = comm + 32*code
    addu  $k1, $k1, $k0
    srl   $k0, $k0, 5           # k0 = code again
    sw    $at, 12($k1)          # scratch the kernel contract clobbers
    sw    $a0, 16($k1)
    sw    $a1, 20($k1)
    mfc0  $a0, $epc
    sw    $a0, 0($k1)
    mfc0  $a0, $cause
    sw    $a0, 4($k1)
    mfc0  $a0, $badvaddr
    sw    $a0, 8($k1)
    li    $a0, 1
    sw    $a0, 24($k1)          # mark the frame active

# Phase 4: floating point check --------------------------------------------
fexc_fpcheck:
    lui   $a0, 0x8000
    ori   $a0, $a0, 0x0a00
    lw    $a0, 12($a0)          # u-area flags
    andi  $a0, $a0, 1           # FP-in-use bit
    bnez  $a0, fexc_fallback    # FP save not supported on the fast path
    nop

# Phase 5: check for TLB fault ---------------------------------------------
fexc_tlbcheck:
    sltiu $a0, $k0, 4           # ExcCodes 1..3 are the TLB exceptions
    beqz  $a0, fexc_vector
    nop
    hcall 2                     # kernel reads page tables, finishes delivery

# Phase 6: vector to user ---------------------------------------------------
fexc_vector:
    lui   $k0, 0x8000
    lw    $k0, 0x0a04($k0)      # user handler address from the u-area
    jr    $k0
    rfe                         # (delay slot) pop to user mode
fexc_end:

# ---- standard path escape --------------------------------------------------
fexc_fallback:
    hcall 1
"#;

/// Names of the Table 3 phases, in handler order, paired with the paper's
/// reported instruction counts for comparison.
pub const TABLE3_PHASES: [(&str, &str, u64); 6] = [
    ("fexc_decode", "Decode Exception", 6),
    ("fexc_compat", "Compatibility Check", 11),
    ("fexc_save", "Save Partial State", 31),
    ("fexc_fpcheck", "Floating Point Check", 6),
    ("fexc_tlbcheck", "Check for TLB Fault", 8),
    ("fexc_vector", "Vector to User", 3),
];

#[cfg(test)]
mod tests {
    use super::*;
    use efex_mips::asm::assemble;

    #[test]
    fn kernel_asm_assembles_with_phase_labels() {
        let prog = assemble(KERNEL_ASM).expect("kernel image must assemble");
        for (label, _, _) in TABLE3_PHASES {
            assert!(prog.symbol(label).is_some(), "missing {label}");
        }
        assert!(prog.symbol("fexc_fallback").is_some());
        assert!(prog.symbol("fexc_end").is_some());
        // Vector addresses are fixed by the architecture.
        assert_eq!(prog.segments()[0].addr, 0x8000_0000);
        assert_eq!(prog.segments()[1].addr, 0x8000_0080);
    }

    #[test]
    fn phases_are_ordered_and_compact() {
        let prog = assemble(KERNEL_ASM).unwrap();
        let mut prev = 0;
        for (label, _, _) in TABLE3_PHASES {
            let addr = prog.symbol(label).unwrap();
            assert!(addr > prev || prev == 0, "{label} out of order");
            prev = addr;
        }
        // The whole fast path must stay small — the point of the design.
        let size = prog.symbol("fexc_end").unwrap() - prog.symbol("fexc_decode").unwrap();
        assert!(
            size / 4 < 80,
            "handler grew past ~80 instructions: {}",
            size / 4
        );
    }

    #[test]
    fn enabled_mask_gating() {
        let mut st = FastExcState::new();
        st.enabled_mask = 1 << ExcCode::AddrErrLoad.code();
        assert!(st.enabled_for(ExcCode::AddrErrLoad));
        assert!(!st.enabled_for(ExcCode::AddrErrStore));
    }

    #[test]
    fn allowed_mask_excludes_syscall_and_interrupt() {
        let mask = FastExcState::allowed_mask();
        assert_eq!(mask & (1 << ExcCode::Syscall.code()), 0);
        assert_eq!(mask & (1 << ExcCode::Interrupt.code()), 0);
        assert_ne!(mask & (1 << ExcCode::TlbMod.code()), 0);
        assert_ne!(mask & (1 << ExcCode::Breakpoint.code()), 0);
        assert_ne!(mask & (1 << ExcCode::AddrErrStore.code()), 0);
    }
}
