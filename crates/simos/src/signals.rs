//! The conventional Unix-style signal engine — the paper's baseline.
//!
//! Section 3.1 of the paper walks through Ultrix's handling of a simple
//! synchronous exception: the kernel saves all user state, **posts** a
//! signal (translating the hardware cause into a Unix signal number),
//! **recognizes** it, and **delivers** it by copying a sigcontext onto the
//! user stack and redirecting the exception return into trampoline code,
//! which calls the user handler and finally issues a `sigreturn` system
//! call to restore state. This module implements that structure
//! functionally; its host-charged phase costs are the `ULTRIX_*` constants
//! in [`crate::costs`], calibrated so a null-handler round trip lands at
//! the paper's ~80 µs.

use std::fmt;

use efex_mips::exception::ExcCode;
use efex_mips::isa::Reg;
use efex_mips::machine::Machine;

/// Unix signal numbers (the subset synchronous exceptions map to).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
pub enum Signal {
    /// Illegal instruction.
    Ill = 4,
    /// Breakpoint / trace trap.
    Trap = 5,
    /// Arithmetic exception.
    Fpe = 8,
    /// Bus error (unaligned access maps here on Ultrix).
    Bus = 10,
    /// Segmentation violation.
    Segv = 11,
    /// Bad system call.
    Sys = 12,
}

impl Signal {
    /// The posting-phase translation from hardware exception to Unix
    /// signal, as the Ultrix C routine performs it.
    pub fn from_exc(code: ExcCode) -> Option<Signal> {
        Some(match code {
            ExcCode::TlbMod | ExcCode::TlbLoad | ExcCode::TlbStore => Signal::Segv,
            ExcCode::AddrErrLoad | ExcCode::AddrErrStore => Signal::Bus,
            ExcCode::BusErrFetch | ExcCode::BusErrData => Signal::Bus,
            ExcCode::Breakpoint => Signal::Trap,
            ExcCode::Overflow => Signal::Fpe,
            ExcCode::ReservedInstr | ExcCode::CopUnusable => Signal::Ill,
            ExcCode::Syscall => Signal::Sys,
            ExcCode::Interrupt => return None,
        })
    }

    /// Decodes a Unix signal number (the `sigaction` argument).
    pub fn from_number(n: u32) -> Option<Signal> {
        Signal::ALL.iter().copied().find(|s| *s as u32 == n)
    }

    /// All signals this engine can deliver.
    pub const ALL: [Signal; 6] = [
        Signal::Ill,
        Signal::Trap,
        Signal::Fpe,
        Signal::Bus,
        Signal::Segv,
        Signal::Sys,
    ];

    fn index(self) -> usize {
        Signal::ALL.iter().position(|s| *s == self).expect("in ALL")
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Signal::Ill => "SIGILL",
            Signal::Trap => "SIGTRAP",
            Signal::Fpe => "SIGFPE",
            Signal::Bus => "SIGBUS",
            Signal::Segv => "SIGSEGV",
            Signal::Sys => "SIGSYS",
        })
    }
}

/// What happens when a signal is recognized (the `sigaction` disposition).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Disposition {
    /// Terminate the process (SIG_DFL for these signals).
    #[default]
    Default,
    /// Discard the signal (SIG_IGN). For program-synchronous faults this
    /// resumes at the faulting instruction — which will fault again, the
    /// looping behaviour the paper notes Unix systems permit.
    Ignore,
    /// Deliver to a user handler at this address.
    Handler(u32),
}

/// Per-process signal state: dispositions and pending set.
#[derive(Clone, Debug, Default)]
pub struct SignalState {
    handlers: [Disposition; 6],
    pending: u8,
}

impl SignalState {
    /// Empty state: default disposition (terminate) for every signal.
    pub fn new() -> SignalState {
        SignalState::default()
    }

    /// Sets a signal's disposition, returning the previous one — the
    /// `sigaction` kernel half.
    pub fn set_disposition(&mut self, sig: Signal, d: Disposition) -> Disposition {
        std::mem::replace(&mut self.handlers[sig.index()], d)
    }

    /// Installs (or clears) a user handler, returning the previous handler
    /// address if one was installed.
    pub fn set_handler(&mut self, sig: Signal, handler: Option<u32>) -> Option<u32> {
        let d = match handler {
            Some(h) => Disposition::Handler(h),
            None => Disposition::Default,
        };
        match self.set_disposition(sig, d) {
            Disposition::Handler(h) => Some(h),
            _ => None,
        }
    }

    /// The signal's disposition.
    pub fn disposition(&self, sig: Signal) -> Disposition {
        self.handlers[sig.index()]
    }

    /// The raw per-signal dispositions, indexed like [`Signal::ALL`]
    /// (checkpointing).
    pub fn dispositions(&self) -> [Disposition; 6] {
        self.handlers
    }

    /// The raw pending bitmask, one bit per [`Signal::ALL`] index
    /// (checkpointing).
    pub fn pending_raw(&self) -> u8 {
        self.pending
    }

    /// Replaces dispositions and pending set with checkpointed state.
    pub fn restore_raw(&mut self, handlers: [Disposition; 6], pending: u8) {
        self.handlers = handlers;
        self.pending = pending;
    }

    /// The installed handler for a signal, if any.
    pub fn handler(&self, sig: Signal) -> Option<u32> {
        match self.handlers[sig.index()] {
            Disposition::Handler(h) => Some(h),
            _ => None,
        }
    }

    /// Posting phase: marks the signal pending.
    pub fn post(&mut self, sig: Signal) {
        self.pending |= 1 << sig.index();
    }

    /// Recognition phase: takes the lowest pending signal, clearing it.
    pub fn recognize(&mut self) -> Option<Signal> {
        for sig in Signal::ALL {
            if self.pending & (1 << sig.index()) != 0 {
                self.pending &= !(1 << sig.index());
                return Some(sig);
            }
        }
        None
    }

    /// Whether any signal is pending.
    pub fn any_pending(&self) -> bool {
        self.pending != 0
    }
}

/// The sigcontext the delivery phase copies onto the user stack:
/// 32 GPRs, HI, LO, PC, cause, badvaddr — 37 words.
pub const SIGCONTEXT_WORDS: u32 = 37;

/// Byte size of a sigcontext.
pub const SIGCONTEXT_BYTES: u32 = SIGCONTEXT_WORDS * 4;

/// Offsets of the non-GPR words within the sigcontext.
pub mod sigcontext {
    /// `$0..$31` at words 0..32.
    pub const REGS: u32 = 0;
    /// Multiply/divide HI register.
    pub const HI: u32 = 32 * 4;
    /// Multiply/divide LO register.
    pub const LO: u32 = 33 * 4;
    /// Continuation program counter.
    pub const PC: u32 = 34 * 4;
    /// CP0 cause register at the fault.
    pub const CAUSE: u32 = 35 * 4;
    /// CP0 bad-virtual-address register at the fault.
    pub const BADVADDR: u32 = 36 * 4;
}

/// Writes the faulting context into guest memory at `sc` (user virtual
/// address, already mapped and resident). `pc` is the continuation PC
/// (the faulting instruction, or the branch when `BD` was set).
///
/// # Errors
///
/// Returns the guest exception if the sigcontext page is unmapped — the
/// classic "signal stack overflow" double fault, which callers turn into
/// process termination.
pub fn write_sigcontext(
    m: &mut Machine,
    sc: u32,
    pc: u32,
    cause: u32,
    badvaddr: u32,
) -> Result<(), efex_mips::exception::Exception> {
    let regs = m.cpu().regs();
    for (i, r) in regs.iter().enumerate() {
        m.poke_u32(sc + 4 * i as u32, *r, false)?;
    }
    let hi = m.cpu().hi();
    let lo = m.cpu().lo();
    m.poke_u32(sc + sigcontext::HI, hi, false)?;
    m.poke_u32(sc + sigcontext::LO, lo, false)?;
    m.poke_u32(sc + sigcontext::PC, pc, false)?;
    m.poke_u32(sc + sigcontext::CAUSE, cause, false)?;
    m.poke_u32(sc + sigcontext::BADVADDR, badvaddr, false)?;
    Ok(())
}

/// Restores machine state from a sigcontext (the `sigreturn` kernel half).
/// Returns the continuation PC.
///
/// # Errors
///
/// Returns the guest exception if the sigcontext is unreadable.
pub fn read_sigcontext(m: &mut Machine, sc: u32) -> Result<u32, efex_mips::exception::Exception> {
    let mut regs = [0u32; 32];
    for (i, slot) in regs.iter_mut().enumerate() {
        *slot = m.peek_u32(sc + 4 * i as u32, false)?;
    }
    let pc = m.peek_u32(sc + sigcontext::PC, false)?;
    for (i, v) in regs.iter().enumerate() {
        if let Some(r) = Reg::new(i as u8) {
            m.cpu_mut().set_reg(r, *v);
        }
    }
    Ok(pc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exc_to_signal_translation() {
        assert_eq!(Signal::from_exc(ExcCode::TlbMod), Some(Signal::Segv));
        assert_eq!(Signal::from_exc(ExcCode::AddrErrLoad), Some(Signal::Bus));
        assert_eq!(Signal::from_exc(ExcCode::Breakpoint), Some(Signal::Trap));
        assert_eq!(Signal::from_exc(ExcCode::Overflow), Some(Signal::Fpe));
        assert_eq!(Signal::from_exc(ExcCode::Interrupt), None);
    }

    #[test]
    fn post_and_recognize_fifo_by_number() {
        let mut s = SignalState::new();
        assert_eq!(s.recognize(), None);
        s.post(Signal::Segv);
        s.post(Signal::Trap);
        assert!(s.any_pending());
        assert_eq!(s.recognize(), Some(Signal::Trap), "lowest number first");
        assert_eq!(s.recognize(), Some(Signal::Segv));
        assert_eq!(s.recognize(), None);
    }

    #[test]
    fn duplicate_posts_collapse() {
        let mut s = SignalState::new();
        s.post(Signal::Bus);
        s.post(Signal::Bus);
        assert_eq!(s.recognize(), Some(Signal::Bus));
        assert_eq!(s.recognize(), None);
    }

    #[test]
    fn handlers_install_and_replace() {
        let mut s = SignalState::new();
        assert_eq!(s.set_handler(Signal::Segv, Some(0x1000)), None);
        assert_eq!(s.set_handler(Signal::Segv, Some(0x2000)), Some(0x1000));
        assert_eq!(s.handler(Signal::Segv), Some(0x2000));
        assert_eq!(s.handler(Signal::Bus), None);
    }
}
