//! Static verification of the guest images against this kernel's layout.
//!
//! [`efex_verify`] is layout-agnostic; this module instantiates it with the
//! contracts the simulated kernel actually lives by: the u-area and the
//! communication page are the only pinned memory the fast path may touch,
//! `$k0`/`$k1` are the kernel-reserved scratch registers, and the frame
//! protocol promises `$at`/`$a0`/`$a1` to the user handler (Section 3.2.1).
//! Debug builds run the full analysis at boot, so a handler edit that
//! breaks a paper invariant fails the first test that boots a kernel.

use efex_mips::asm::Program;
use efex_mips::isa::Reg;
use efex_verify::{Checks, PinnedRegion, PointerSlot, Report, VerifyConfig};

use crate::fastexc::TABLE3_PHASES;
use crate::layout;

pub use efex_verify::{FAST_PATH_CYCLES, FAST_PATH_INSTRUCTIONS};

/// The fast-path instruction budget enforced over the assembled image: the
/// single authoritative Table 3 transcription from [`efex_verify::budget`].
/// (This constant was historically a hand-copied 65 — the paper's figure
/// includes pipeline overhead the simulator charges as memory cycles —
/// while the health plane checked 44/55; every consumer now shares the
/// [`efex_verify::budget`] numbers.)
pub const FAST_PATH_BUDGET: u64 = FAST_PATH_INSTRUCTIONS;

/// The verification contract for the kernel image (vectors + fast-path
/// handler) as assembled from [`crate::fastexc::KERNEL_ASM`].
///
/// # Panics
///
/// Panics if the image lacks the `fexc_*` phase labels — the same
/// condition the boot-time assembly itself depends on.
pub fn kernel_config(prog: &Program) -> VerifyConfig {
    let label = |name: &str| {
        prog.labels()
            .get(name)
            .copied()
            .unwrap_or_else(|| panic!("kernel image lacks label {name}"))
    };
    let phases = TABLE3_PHASES
        .iter()
        .map(|(name, _, _)| (name.to_string(), label(name)))
        .collect();
    VerifyConfig {
        entry: label("fexc_decode"),
        // The UTLB refill vector is entered by hardware, not by a jump.
        extra_roots: vec![0x8000_0000],
        phases,
        end: Some(label("fexc_end")),
        instruction_budget: Some(FAST_PATH_BUDGET),
        reserved: vec![Reg::K0, Reg::K1],
        protocol_saved: vec![Reg::AT, Reg::A0, Reg::A1],
        // Until the save phase completes, a nested fault would destroy the
        // live EPC/cause/badvaddr.
        critical_until: Some(label("fexc_fpcheck")),
        pinned: vec![
            PinnedRegion {
                name: "u-area".into(),
                base: Some(layout::UAREA_VADDR),
                len: 0x200,
            },
            PinnedRegion {
                name: "comm-page (KSEG0 alias)".into(),
                base: None,
                len: layout::PAGE_SIZE,
            },
        ],
        pointer_slots: vec![PointerSlot {
            addr: layout::UAREA_VADDR + layout::uarea::COMM_KSEG0,
            region: 1,
        }],
        save_region: Some(1),
        syscalls_return: true,
        checks: Checks::all(),
    }
}

/// The verification contract for the user-side signal trampoline
/// ([`crate::kernel::TRAMPOLINE_ASM`]): hazard lints only — user code
/// touches pageable memory by design, and the tail `sigreturn` never
/// returns.
pub fn trampoline_config(prog: &Program) -> VerifyConfig {
    let mut config = VerifyConfig::hazards_only(prog.entry());
    config.syscalls_return = false;
    config
}

/// Analyzes the kernel image under [`kernel_config`].
///
/// # Panics
///
/// Panics on a malformed image (missing phase labels).
pub fn verify_kernel_image(prog: &Program) -> Report {
    efex_verify::analyze(prog, &kernel_config(prog))
        .expect("kernel verify config is internally consistent")
}

/// Analyzes the trampoline image under [`trampoline_config`].
pub fn verify_trampoline_image(prog: &Program) -> Report {
    efex_verify::analyze(prog, &trampoline_config(prog))
        .expect("trampoline verify config is internally consistent")
}

/// Debug-build boot assertion: both embedded images must verify clean.
/// Runs the analysis once per process (it is pure over constant inputs).
#[cfg(debug_assertions)]
pub(crate) fn assert_boot_images_verify(kernel: &Program, trampoline: &Program) {
    use std::sync::OnceLock;
    static CHECKED: OnceLock<()> = OnceLock::new();
    CHECKED.get_or_init(|| {
        let report = verify_kernel_image(kernel);
        assert!(
            report.is_clean(),
            "kernel image fails static verification:\n{}",
            report.render()
        );
        let report = verify_trampoline_image(trampoline);
        assert!(
            report.is_clean(),
            "trampoline image fails static verification:\n{}",
            report.render()
        );
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fastexc::KERNEL_ASM;
    use crate::kernel::TRAMPOLINE_ASM;
    use efex_mips::asm::assemble;

    #[test]
    fn kernel_image_verifies_clean() {
        let prog = assemble(KERNEL_ASM).unwrap();
        let report = verify_kernel_image(&prog);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn trampoline_image_verifies_clean() {
        let prog = assemble(TRAMPOLINE_ASM).unwrap();
        let report = verify_trampoline_image(&prog);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn static_fast_path_matches_table3_shape() {
        let prog = assemble(KERNEL_ASM).unwrap();
        let report = verify_kernel_image(&prog);
        let fp = report.fast_path.expect("fast path bound exists");
        assert!(fp.total_instructions <= FAST_PATH_BUDGET);
        assert_eq!(fp.per_phase.len(), TABLE3_PHASES.len());
        let sum: u64 = fp.per_phase.iter().map(|p| p.instructions).sum();
        assert_eq!(
            sum, fp.total_instructions,
            "every fast-path instruction belongs to a phase"
        );
    }

    #[test]
    fn save_phase_clobbers_only_contract_registers() {
        let prog = assemble(KERNEL_ASM).unwrap();
        let report = verify_kernel_image(&prog);
        for (phase, regs) in &report.phase_clobbers {
            for r in regs {
                assert!(
                    [Reg::K0, Reg::K1, Reg::A0].contains(r),
                    "{phase} clobbers {r}, outside the handler's register contract"
                );
            }
        }
    }
}
