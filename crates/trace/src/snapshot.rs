//! The `Snapshot` pattern: every stats struct in the workspace renders to one
//! plain, serializable shape.
//!
//! `HostStats`, `GcStats`, `DsmStats`, … each expose domain-specific counters.
//! Implementing [`Snapshot`] gives the bench harness and the JSON sink a
//! single shape ([`StatsSnapshot`]) to consume, instead of matching on each
//! struct's fields.

use crate::json;

/// A flat, ordered set of named counters from one component.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Which component produced this (e.g. `"host"`, `"gc"`).
    pub component: &'static str,
    /// Counter name → value, in insertion order. Names may be computed
    /// (e.g. per-(path, class) quantile keys), so they are owned strings.
    pub counters: Vec<(String, u64)>,
}

impl StatsSnapshot {
    /// An empty snapshot for one component.
    pub fn new(component: &'static str) -> StatsSnapshot {
        StatsSnapshot {
            component,
            counters: Vec::new(),
        }
    }

    /// Adds a counter (builder-style).
    pub fn counter(mut self, name: impl Into<String>, value: u64) -> StatsSnapshot {
        self.counters.push((name.into(), value));
        self
    }

    /// Looks a counter up by name.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Adds `other`'s counters into this snapshot, summing values with
    /// matching names; names not yet present are appended in `other`'s
    /// order. Fleet aggregation sums per-tenant snapshots this way, so the
    /// result is independent of how tenants were scheduled across threads
    /// (addition is commutative; ordering is fixed by the first snapshot).
    pub fn merge(&mut self, other: &StatsSnapshot) {
        for (name, value) in &other.counters {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, v)) => *v = v.saturating_add(*value),
                None => self.counters.push((name.clone(), *value)),
            }
        }
    }

    /// Sums an iterator of snapshots into one under `component`.
    pub fn aggregate(
        component: &'static str,
        snaps: impl IntoIterator<Item = StatsSnapshot>,
    ) -> StatsSnapshot {
        let mut out = StatsSnapshot::new(component);
        for s in snaps {
            out.merge(&s);
        }
        out
    }

    /// `{"component":"gc","counters":{"minor_collections":3,…}}`
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        json::field_str(&mut out, "component", self.component);
        let mut inner = String::from("{");
        for (name, value) in &self.counters {
            json::field_u64(&mut inner, name, *value);
        }
        json::close_object(&mut inner);
        json::field_raw(&mut out, "counters", &inner);
        json::close_object(&mut out);
        out
    }
}

/// Implemented by every stats struct in the workspace.
pub trait Snapshot {
    /// Captures the current counter values as a plain serializable struct.
    fn snapshot(&self) -> StatsSnapshot;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Demo {
        faults: u64,
        retries: u64,
    }

    impl Snapshot for Demo {
        fn snapshot(&self) -> StatsSnapshot {
            StatsSnapshot::new("demo")
                .counter("faults", self.faults)
                .counter("retries", self.retries)
        }
    }

    #[test]
    fn snapshot_preserves_order_and_values() {
        let s = Demo {
            faults: 3,
            retries: 1,
        }
        .snapshot();
        assert_eq!(s.component, "demo");
        assert_eq!(s.get("faults"), Some(3));
        assert_eq!(s.get("missing"), None);
        assert_eq!(s.counters[0].0, "faults");
    }

    #[test]
    fn merge_sums_by_name_and_appends_unknowns() {
        let mut a = Demo {
            faults: 3,
            retries: 1,
        }
        .snapshot();
        let b = StatsSnapshot::new("demo")
            .counter("retries", 9)
            .counter("evictions", 2);
        a.merge(&b);
        assert_eq!(a.get("faults"), Some(3));
        assert_eq!(a.get("retries"), Some(10));
        assert_eq!(a.get("evictions"), Some(2));
        assert_eq!(a.counters.len(), 3, "no duplicate names after merge");
    }

    #[test]
    fn aggregate_is_order_independent() {
        let mk = |f, r| {
            StatsSnapshot::new("demo")
                .counter("faults", f)
                .counter("retries", r)
        };
        let forward = StatsSnapshot::aggregate("fleet", vec![mk(1, 10), mk(2, 20), mk(4, 40)]);
        let reverse = StatsSnapshot::aggregate("fleet", vec![mk(4, 40), mk(2, 20), mk(1, 10)]);
        assert_eq!(forward.get("faults"), Some(7));
        assert_eq!(forward.get("retries"), Some(70));
        assert_eq!(forward.counters, reverse.counters);
        assert_eq!(forward.component, "fleet");
    }

    #[test]
    fn snapshot_json_shape() {
        let s = Demo {
            faults: 3,
            retries: 1,
        }
        .snapshot();
        assert_eq!(
            s.to_json(),
            "{\"component\":\"demo\",\"counters\":{\"faults\":3,\"retries\":1}}"
        );
    }
}
