//! The `Snapshot` pattern: every stats struct in the workspace renders to one
//! plain, serializable shape.
//!
//! `HostStats`, `GcStats`, `DsmStats`, … each expose domain-specific counters.
//! Implementing [`Snapshot`] gives the bench harness and the JSON sink a
//! single shape ([`StatsSnapshot`]) to consume, instead of matching on each
//! struct's fields.

use crate::json;

/// A flat, ordered set of named counters from one component.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Which component produced this (e.g. `"host"`, `"gc"`).
    pub component: &'static str,
    /// Counter name → value, in insertion order. Names may be computed
    /// (e.g. per-(path, class) quantile keys), so they are owned strings.
    pub counters: Vec<(String, u64)>,
}

impl StatsSnapshot {
    pub fn new(component: &'static str) -> StatsSnapshot {
        StatsSnapshot {
            component,
            counters: Vec::new(),
        }
    }

    /// Adds a counter (builder-style).
    pub fn counter(mut self, name: impl Into<String>, value: u64) -> StatsSnapshot {
        self.counters.push((name.into(), value));
        self
    }

    /// Looks a counter up by name.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// `{"component":"gc","counters":{"minor_collections":3,…}}`
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        json::field_str(&mut out, "component", self.component);
        let mut inner = String::from("{");
        for (name, value) in &self.counters {
            json::field_u64(&mut inner, name, *value);
        }
        json::close_object(&mut inner);
        json::field_raw(&mut out, "counters", &inner);
        json::close_object(&mut out);
        out
    }
}

/// Implemented by every stats struct in the workspace.
pub trait Snapshot {
    /// Captures the current counter values as a plain serializable struct.
    fn snapshot(&self) -> StatsSnapshot;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Demo {
        faults: u64,
        retries: u64,
    }

    impl Snapshot for Demo {
        fn snapshot(&self) -> StatsSnapshot {
            StatsSnapshot::new("demo")
                .counter("faults", self.faults)
                .counter("retries", self.retries)
        }
    }

    #[test]
    fn snapshot_preserves_order_and_values() {
        let s = Demo {
            faults: 3,
            retries: 1,
        }
        .snapshot();
        assert_eq!(s.component, "demo");
        assert_eq!(s.get("faults"), Some(3));
        assert_eq!(s.get("missing"), None);
        assert_eq!(s.counters[0].0, "faults");
    }

    #[test]
    fn snapshot_json_shape() {
        let s = Demo {
            faults: 3,
            retries: 1,
        }
        .snapshot();
        assert_eq!(
            s.to_json(),
            "{\"component\":\"demo\",\"counters\":{\"faults\":3,\"retries\":1}}"
        );
    }
}
