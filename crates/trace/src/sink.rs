//! Trace sinks: where lifecycle events go.
//!
//! Sinks take `&self` and use interior mutability so one sink can be shared
//! (via `Rc<dyn TraceSink>`) between several emitters — the simulated kernel,
//! the `System` measurement harness, and the host-level runtime all write
//! into the same stream, which is what makes the ordered lifecycle view
//! possible.

use crate::event::{EventRing, TraceEvent};
use crate::snapshot::{Snapshot, StatsSnapshot};
use std::cell::RefCell;
use std::io::Write;
use std::rc::Rc;

/// Consumer of [`TraceEvent`]s.
pub trait TraceSink {
    /// Receives one lifecycle event.
    fn emit(&self, event: &TraceEvent);

    /// Flush any buffered output (no-op for in-memory sinks).
    fn flush(&self) {}
}

/// Shared handle to a sink; cheap to clone, single-threaded (the simulator is
/// single-threaded throughout).
pub type SharedSink = Rc<dyn TraceSink>;

/// The zero-cost default: drops every event.
///
/// Instrumented components hold a `SharedSink` unconditionally; with a
/// `NullSink` the emission path is a virtual call that touches no state and
/// charges no simulated cycles, so tracing-off runs are unperturbed.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&self, _event: &TraceEvent) {}
}

/// A `SharedSink` wrapping [`NullSink`].
pub fn null_sink() -> SharedSink {
    Rc::new(NullSink)
}

/// In-memory ring sink. Keep an `Rc` to it, hand a clone to the builder, and
/// read `events()` after the run.
#[derive(Debug)]
pub struct RingSink {
    ring: RefCell<EventRing>,
}

impl RingSink {
    /// Ring with [`EventRing::DEFAULT_CAPACITY`] slots.
    pub fn new() -> RingSink {
        RingSink::with_capacity(EventRing::DEFAULT_CAPACITY)
    }

    /// Ring holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> RingSink {
        RingSink {
            ring: RefCell::new(EventRing::with_capacity(capacity)),
        }
    }

    /// Snapshot of the buffered events, oldest → newest.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring.borrow().iter().copied().collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.ring.borrow().len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.ring.borrow().is_empty()
    }

    /// Events lost to ring overflow (alias of [`RingSink::overwritten`]).
    pub fn dropped(&self) -> u64 {
        self.ring.borrow().dropped()
    }

    /// Oldest events overwritten by ring wrap-around. Lifetime counter:
    /// survives [`RingSink::clear`] and snapshotting.
    pub fn overwritten(&self) -> u64 {
        self.ring.borrow().overwritten()
    }

    /// Lifetime count of events pushed, including overwritten ones.
    pub fn total_pushed(&self) -> u64 {
        self.ring.borrow().total_pushed()
    }

    /// Discards buffered events; the `dropped`/`overwritten` and
    /// `total_pushed` counters survive (see [`EventRing::clear`]).
    pub fn clear(&self) {
        self.ring.borrow_mut().clear();
    }

    /// Runs `f` against the underlying ring without copying.
    pub fn with_ring<R>(&self, f: impl FnOnce(&EventRing) -> R) -> R {
        f(&self.ring.borrow())
    }
}

impl Default for RingSink {
    fn default() -> RingSink {
        RingSink::new()
    }
}

impl Snapshot for RingSink {
    /// Ring occupancy and overflow counters — `dropped` > 0 means the ring
    /// wrapped and the oldest events were overwritten (see
    /// [`EventRing::dropped`]).
    fn snapshot(&self) -> StatsSnapshot {
        self.ring.borrow().snapshot()
    }
}

impl TraceSink for RingSink {
    fn emit(&self, event: &TraceEvent) {
        self.ring.borrow_mut().push(*event);
    }
}

/// Writes each event as one JSON object per line to any `Write`.
pub struct JsonLinesSink<W: Write> {
    writer: RefCell<W>,
    seq: RefCell<u64>,
}

impl<W: Write> JsonLinesSink<W> {
    /// Wraps a writer; one JSON object per emitted event, one per line.
    pub fn new(writer: W) -> JsonLinesSink<W> {
        JsonLinesSink {
            writer: RefCell::new(writer),
            seq: RefCell::new(0),
        }
    }

    /// Consumes the sink and returns the writer (flushing it).
    pub fn into_inner(self) -> W {
        let mut w = self.writer.into_inner();
        let _ = w.flush();
        w
    }
}

impl JsonLinesSink<std::io::Stdout> {
    /// A sink writing to standard output.
    pub fn stdout() -> JsonLinesSink<std::io::Stdout> {
        JsonLinesSink::new(std::io::stdout())
    }
}

impl<W: Write> TraceSink for JsonLinesSink<W> {
    fn emit(&self, event: &TraceEvent) {
        let mut ev = *event;
        let mut seq = self.seq.borrow_mut();
        ev.seq = *seq;
        *seq += 1;
        // A full pipe is not the simulation's problem; drop the line.
        let _ = writeln!(self.writer.borrow_mut(), "{}", ev.to_json());
    }

    fn flush(&self) {
        let _ = self.writer.borrow_mut().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, FaultClass, TracePath};

    fn ev(cycles: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            cycles,
            kind,
            path: TracePath::FastUser,
            class: FaultClass::Breakpoint,
            ..TraceEvent::default()
        }
    }

    #[test]
    fn ring_sink_buffers_in_order() {
        let sink = RingSink::with_capacity(8);
        sink.emit(&ev(10, EventKind::FaultRaised));
        sink.emit(&ev(20, EventKind::Resumed));
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::FaultRaised);
        assert_eq!(events[1].kind, EventKind::Resumed);
        assert!(events[0].seq < events[1].seq);
    }

    #[test]
    fn shared_sink_sees_emissions_from_clones() {
        let ring = Rc::new(RingSink::with_capacity(4));
        let a: SharedSink = ring.clone();
        let b: SharedSink = ring.clone();
        a.emit(&ev(1, EventKind::FaultRaised));
        b.emit(&ev(2, EventKind::KernelEntered));
        assert_eq!(ring.len(), 2);
    }

    #[test]
    fn json_lines_sink_writes_one_line_per_event() {
        let sink = JsonLinesSink::new(Vec::new());
        sink.emit(&ev(5, EventKind::FaultRaised));
        sink.emit(&ev(6, EventKind::Resumed));
        let out = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"seq\":0"));
        assert!(lines[1].contains("\"seq\":1"));
        assert!(lines[1].contains("\"event\":\"resumed\""));
    }

    #[test]
    fn ring_sink_snapshot_tracks_drops() {
        let sink = RingSink::with_capacity(2);
        for i in 0..5 {
            sink.emit(&ev(i, EventKind::FaultRaised));
        }
        let s = sink.snapshot();
        assert_eq!(s.get("dropped"), Some(3));
        assert_eq!(s.get("overwritten"), Some(3));
        assert_eq!(s.get("total_pushed"), Some(5));
        assert_eq!(sink.dropped(), 3);
        assert_eq!(sink.overwritten(), 3);
    }

    #[test]
    fn ring_sink_counters_survive_snapshot_and_clear() {
        // Degraded-delivery accounting reads these counters after each
        // injection phase; a snapshot or an inter-phase clear must not
        // silently reset them.
        let sink = RingSink::with_capacity(2);
        for i in 0..6 {
            sink.emit(&ev(i, EventKind::FaultRaised));
        }
        let before = sink.snapshot();
        let after = sink.snapshot();
        assert_eq!(before.get("dropped"), after.get("dropped"));
        assert_eq!(before.get("overwritten"), after.get("overwritten"));
        assert_eq!(before.get("total_pushed"), after.get("total_pushed"));
        sink.clear();
        assert_eq!(sink.dropped(), 4, "clear keeps the loss count");
        assert_eq!(sink.total_pushed(), 6, "clear keeps the push count");
        let s = sink.snapshot();
        assert_eq!(s.get("buffered"), Some(0));
        assert_eq!(s.get("dropped"), Some(4));
        assert_eq!(s.get("overwritten"), Some(4));
    }

    #[test]
    fn null_sink_is_inert() {
        let sink = NullSink;
        for i in 0..100 {
            sink.emit(&ev(i, EventKind::FaultRaised));
        }
        sink.flush();
    }
}
