//! Exception lifecycle events and the fixed-capacity ring that stores them.

use crate::snapshot::{Snapshot, StatsSnapshot};
use std::fmt;

/// Where in the exception lifecycle an event was emitted.
///
/// The six stages mirror the paper's Table 3 phase breakdown: the hardware
/// raises the fault, the kernel vectors in, saves the faulting context,
/// transfers to the user handler, the handler returns, and the faulting
/// thread resumes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
#[repr(u8)]
pub enum EventKind {
    /// The hardware latched an exception.
    #[default]
    FaultRaised = 0,
    /// The kernel's vector began executing.
    KernelEntered = 1,
    /// The faulting context (scratch registers, EPC, cause) is saved.
    StateSaved = 2,
    /// Control transferred to the user-level handler.
    HandlerEntered = 3,
    /// The user-level handler finished.
    HandlerReturned = 4,
    /// The faulting thread resumed at (or past) the faulting instruction.
    Resumed = 5,
}

impl EventKind {
    /// Every kind, in lifecycle order.
    pub const ALL: [EventKind; 6] = [
        EventKind::FaultRaised,
        EventKind::KernelEntered,
        EventKind::StateSaved,
        EventKind::HandlerEntered,
        EventKind::HandlerReturned,
        EventKind::Resumed,
    ];

    /// Stable kebab-case label used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::FaultRaised => "fault-raised",
            EventKind::KernelEntered => "kernel-entered",
            EventKind::StateSaved => "state-saved",
            EventKind::HandlerEntered => "handler-entered",
            EventKind::HandlerReturned => "handler-returned",
            EventKind::Resumed => "resumed",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The delivery path an event travelled, mirroring `efex_core::DeliveryPath`
/// (duplicated here so the tracer sits below `efex-core` in the crate graph).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
#[repr(u8)]
pub enum TracePath {
    /// Ultrix-style signal delivery.
    UnixSignals = 0,
    /// The paper's fast user-level delivery (§3.2).
    #[default]
    FastUser = 1,
    /// Hardware-vectored user delivery (§3.3).
    HardwareVectored = 2,
}

impl TracePath {
    /// Every delivery path.
    pub const ALL: [TracePath; 3] = [
        TracePath::UnixSignals,
        TracePath::FastUser,
        TracePath::HardwareVectored,
    ];

    /// Stable kebab-case label used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            TracePath::UnixSignals => "unix-signals",
            TracePath::FastUser => "fast-user",
            TracePath::HardwareVectored => "hardware-vectored",
        }
    }

    pub(crate) fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for TracePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Coarse classification of what faulted, used to key [`crate::Metrics`].
///
/// The first four variants correspond to `efex_core::ExceptionKind` (the
/// Table 2 microbenchmark kinds); the rest cover traffic the kernel sees
/// outside the microbenchmarks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
#[repr(u8)]
pub enum FaultClass {
    /// `break` instruction (the null-exception benchmark).
    #[default]
    Breakpoint = 0,
    /// Write to a write-protected page.
    WriteProtect = 1,
    /// Access to a protected subpage (§3.2.4).
    Subpage = 2,
    /// Unaligned access used for pointer swizzling (§4.2.2).
    Unaligned = 3,
    /// TLB refill handled entirely in the kernel.
    TlbMiss = 4,
    /// Page fault serviced by the kernel (page-in).
    PageFault = 5,
    /// Everything else (syscalls, arithmetic traps, …).
    Other = 6,
}

impl FaultClass {
    /// Every fault class.
    pub const ALL: [FaultClass; 7] = [
        FaultClass::Breakpoint,
        FaultClass::WriteProtect,
        FaultClass::Subpage,
        FaultClass::Unaligned,
        FaultClass::TlbMiss,
        FaultClass::PageFault,
        FaultClass::Other,
    ];

    /// Stable kebab-case label used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultClass::Breakpoint => "breakpoint",
            FaultClass::WriteProtect => "write-protect",
            FaultClass::Subpage => "subpage",
            FaultClass::Unaligned => "unaligned",
            FaultClass::TlbMiss => "tlb-miss",
            FaultClass::PageFault => "page-fault",
            FaultClass::Other => "other",
        }
    }

    pub(crate) fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One exception lifecycle event.
///
/// `seq` is assigned by the consuming sink (emitters leave it 0), so events
/// from several emitters sharing a sink still order correctly.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TraceEvent {
    /// Sink-assigned sequence number.
    pub seq: u64,
    /// Cycle timestamp (simulated machine cycles, or host-charged cycles for
    /// the host-level runtime).
    pub cycles: u64,
    /// Lifecycle stage.
    pub kind: EventKind,
    /// Delivery path the exception travelled.
    pub path: TracePath,
    /// Coarse fault classification.
    pub class: FaultClass,
    /// Raw `Cause.ExcCode` value (0–12 on the R3000).
    pub exc_code: u8,
    /// Faulting virtual address, or 0 when not applicable.
    pub vaddr: u32,
    /// Faulting program counter, or 0 when not applicable.
    pub pc: u32,
}

impl TraceEvent {
    /// Renders the event as a single JSON object (one line, no trailing
    /// newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\":{},\"cycles\":{},\"event\":\"{}\",\"path\":\"{}\",\
             \"class\":\"{}\",\"exc_code\":{},\"vaddr\":\"{:#010x}\",\"pc\":\"{:#010x}\"}}",
            self.seq,
            self.cycles,
            self.kind,
            self.path,
            self.class,
            self.exc_code,
            self.vaddr,
            self.pc,
        )
    }
}

/// Fixed-capacity ring of [`TraceEvent`]s.
///
/// Storage is allocated once at construction; pushing never allocates. When
/// full, the oldest event is overwritten and `dropped` is incremented, so the
/// ring always holds the most recent `capacity` events.
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: Vec<TraceEvent>,
    /// Nominal capacity as requested at construction. `Vec::with_capacity`
    /// may over-allocate, so the ring tracks the requested size itself —
    /// both the wrap point and the reported `capacity` stay exact.
    cap: usize,
    /// Index of the oldest event (only meaningful once full).
    head: usize,
    len: usize,
    overwritten: u64,
    next_seq: u64,
}

impl EventRing {
    /// Default ring capacity used by [`crate::RingSink::new`].
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// An empty ring holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> EventRing {
        assert!(capacity > 0, "EventRing capacity must be positive");
        EventRing {
            buf: Vec::with_capacity(capacity),
            cap: capacity,
            head: 0,
            len: 0,
            overwritten: 0,
            next_seq: 0,
        }
    }

    /// Appends an event, assigning its sequence number. Overwrites the oldest
    /// event when full.
    pub fn push(&mut self, mut ev: TraceEvent) {
        ev.seq = self.next_seq;
        self.next_seq += 1;
        if self.len < self.cap {
            self.buf.push(ev);
            self.len += 1;
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.overwritten += 1;
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are held.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum number of events the ring holds before overwriting.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of events lost because the ring was full (alias of
    /// [`EventRing::overwritten`], kept for existing callers).
    pub fn dropped(&self) -> u64 {
        self.overwritten
    }

    /// Number of oldest events overwritten by a wrap of the full ring.
    /// Lifetime counter: it survives [`EventRing::clear`] and snapshotting,
    /// so loss stays observable across measurement phases.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Total events ever pushed (equals the next sequence number).
    pub fn total_pushed(&self) -> u64 {
        self.next_seq
    }

    /// Iterates oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        let (wrapped, start) = self.buf.split_at(self.head.min(self.len));
        start.iter().chain(wrapped.iter())
    }

    /// Discards the buffered events. The lifetime counters — `overwritten`
    /// (`dropped`) and `total_pushed` — deliberately survive: clearing the
    /// buffer between phases must not silently erase evidence of loss.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.len = 0;
    }
}

impl Snapshot for EventRing {
    /// Ring occupancy and overflow counters. A nonzero `overwritten` (alias
    /// `dropped`) makes overflow observable: the ring silently overwrote that
    /// many oldest events, so any report built from the buffer is a suffix of
    /// the run. Taking a snapshot never resets any counter.
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot::new("event-ring")
            .counter("capacity", self.capacity() as u64)
            .counter("buffered", self.len() as u64)
            .counter("total_pushed", self.total_pushed())
            .counter("dropped", self.dropped())
            .counter("overwritten", self.overwritten())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycles: u64) -> TraceEvent {
        TraceEvent {
            cycles,
            ..TraceEvent::default()
        }
    }

    #[test]
    fn ring_keeps_insertion_order_before_wrap() {
        let mut r = EventRing::with_capacity(4);
        for c in 0..3 {
            r.push(ev(c));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 0);
        let cycles: Vec<u64> = r.iter().map(|e| e.cycles).collect();
        assert_eq!(cycles, [0, 1, 2]);
        let seqs: Vec<u64> = r.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [0, 1, 2]);
    }

    #[test]
    fn ring_overwrites_oldest_on_wrap() {
        let mut r = EventRing::with_capacity(4);
        for c in 0..10 {
            r.push(ev(c));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.capacity(), 4);
        assert_eq!(r.dropped(), 6);
        assert_eq!(r.total_pushed(), 10);
        let cycles: Vec<u64> = r.iter().map(|e| e.cycles).collect();
        assert_eq!(cycles, [6, 7, 8, 9], "ring must retain the newest events");
        let seqs: Vec<u64> = r.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [6, 7, 8, 9]);
    }

    #[test]
    fn ring_wraps_repeatedly_without_allocating() {
        let mut r = EventRing::with_capacity(3);
        let cap_ptr = r.buf.as_ptr();
        for c in 0..1000 {
            r.push(ev(c));
        }
        assert_eq!(r.buf.as_ptr(), cap_ptr, "pushing must never reallocate");
        let cycles: Vec<u64> = r.iter().map(|e| e.cycles).collect();
        assert_eq!(cycles, [997, 998, 999]);
    }

    #[test]
    fn clear_resets_but_keeps_sequence_monotonic() {
        let mut r = EventRing::with_capacity(2);
        r.push(ev(0));
        r.push(ev(1));
        r.clear();
        assert!(r.is_empty());
        r.push(ev(2));
        assert_eq!(r.iter().next().unwrap().seq, 2);
    }

    #[test]
    fn loss_counters_survive_clear() {
        let mut r = EventRing::with_capacity(2);
        for c in 0..5 {
            r.push(ev(c));
        }
        assert_eq!(r.overwritten(), 3);
        r.clear();
        assert_eq!(r.overwritten(), 3, "clear must not erase loss evidence");
        assert_eq!(r.dropped(), 3, "dropped stays an alias of overwritten");
        assert_eq!(r.total_pushed(), 5);
        // Losses keep accumulating across the clear.
        for c in 5..9 {
            r.push(ev(c));
        }
        assert_eq!(r.overwritten(), 5);
        assert_eq!(r.total_pushed(), 9);
    }

    #[test]
    fn snapshot_does_not_reset_counters() {
        let mut r = EventRing::with_capacity(2);
        for c in 0..6 {
            r.push(ev(c));
        }
        let a = r.snapshot();
        let b = r.snapshot();
        for key in [
            "capacity",
            "buffered",
            "total_pushed",
            "dropped",
            "overwritten",
        ] {
            assert_eq!(a.get(key), b.get(key), "{key} changed across snapshots");
        }
        assert_eq!(a.get("overwritten"), Some(4));
        assert_eq!(a.get("dropped"), Some(4), "both spellings agree");
    }

    #[test]
    fn capacity_is_the_requested_size_exactly() {
        // Vec::with_capacity may over-allocate; the ring must wrap at the
        // nominal size regardless, or overflow counts become untrustworthy.
        let mut r = EventRing::with_capacity(3);
        for c in 0..7 {
            r.push(ev(c));
        }
        assert_eq!(r.capacity(), 3);
        assert_eq!(r.len(), 3);
        assert_eq!(r.overwritten(), 4);
    }

    #[test]
    fn snapshot_reports_overflow() {
        let mut r = EventRing::with_capacity(4);
        for c in 0..10 {
            r.push(ev(c));
        }
        let s = r.snapshot();
        assert_eq!(s.component, "event-ring");
        assert_eq!(s.get("capacity"), Some(4));
        assert_eq!(s.get("buffered"), Some(4));
        assert_eq!(s.get("total_pushed"), Some(10));
        assert_eq!(s.get("dropped"), Some(6), "overflow must be observable");
    }

    #[test]
    fn event_json_shape() {
        let e = TraceEvent {
            seq: 7,
            cycles: 125,
            kind: EventKind::HandlerEntered,
            path: TracePath::FastUser,
            class: FaultClass::WriteProtect,
            exc_code: 1,
            vaddr: 0x40_2000,
            pc: 0x40_0104,
        };
        let j = e.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"event\":\"handler-entered\""));
        assert!(j.contains("\"path\":\"fast-user\""));
        assert!(j.contains("\"vaddr\":\"0x00402000\""));
    }
}
