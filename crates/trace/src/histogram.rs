//! Log2-bucketed cycle histogram.

use crate::json;

/// Number of buckets: one for zero plus one per power of two of `u64`.
pub const BUCKETS: usize = 65;

/// A histogram over `u64` samples with logarithmic buckets.
///
/// Bucket 0 holds the value 0; bucket `k` (k ≥ 1) holds values in
/// `[2^(k-1), 2^k)`. This gives constant-time, allocation-free recording with
/// enough resolution to tell a 5 µs fast-path delivery from an 80 µs signal
/// delivery at a glance.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// The bucket index a value falls into.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()) as usize
        }
    }

    /// The half-open value range `[lo, hi)` covered by a bucket. Bucket 0 is
    /// the degenerate `[0, 1)`.
    pub fn bucket_range(index: usize) -> (u64, u64) {
        assert!(index < BUCKETS);
        if index == 0 {
            (0, 1)
        } else if index == BUCKETS - 1 {
            (1u64 << (index - 1), u64::MAX)
        } else {
            (1u64 << (index - 1), 1u64 << index)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Resets the histogram to the freshly-constructed empty state: all
    /// buckets, the count, the sum, and the observed extrema. Quantiles
    /// return `None` again until new samples are recorded.
    pub fn clear(&mut self) {
        *self = Histogram::default();
    }

    /// Estimates the `q`-quantile (`0.0 ≤ q ≤ 1.0`) of the recorded samples.
    ///
    /// Edge semantics are exact: `q = 0.0` is the observed minimum and
    /// `q = 1.0` the observed maximum (out-of-range `q` clamps to these).
    /// Interior quantiles walk the log2 buckets to the one containing the
    /// target rank and interpolate linearly within its value range — staying
    /// strictly inside the bucket's half-open `[lo, hi)` — then clamp to the
    /// observed `[min, max]`, so single-sample and single-bucket histograms
    /// report the exact sample and estimates never leave the observed range.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        if q <= 0.0 {
            return Some(self.min);
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        // 1-based target rank: the smallest rank whose cumulative share ≥ q.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            if cum >= rank {
                let (lo, hi) = Self::bucket_range(i);
                // Position of the target rank within this bucket, in (0, 1].
                let within = (rank - (cum - c)) as f64 / c as f64;
                let est = (lo as f64 + within * (hi - lo) as f64) as u64;
                // `hi` itself lies in the *next* bucket; cap at `hi - 1` so a
                // full-bucket rank does not round one bucket too high.
                return Some(est.min(hi - 1).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Median estimate (see [`Histogram::quantile`]).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> Option<u64> {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Count in one bucket.
    pub fn bucket(&self, index: usize) -> u64 {
        self.buckets[index]
    }

    /// Iterates the non-empty buckets as `(lo, hi, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bucket_range(i);
                (lo, hi, c)
            })
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// JSON object: summary stats plus the non-empty buckets.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        json::field_u64(&mut out, "count", self.count);
        json::field_u64(&mut out, "sum", self.sum);
        json::field_u64(&mut out, "min", self.min().unwrap_or(0));
        json::field_u64(&mut out, "max", self.max().unwrap_or(0));
        json::field_f64(&mut out, "mean", self.mean());
        json::field_u64(&mut out, "p50", self.p50().unwrap_or(0));
        json::field_u64(&mut out, "p90", self.p90().unwrap_or(0));
        json::field_u64(&mut out, "p99", self.p99().unwrap_or(0));
        out.push_str("\"buckets\":[");
        let mut first = true;
        for (lo, hi, c) in self.nonzero_buckets() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("[{lo},{hi},{c}]"));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        assert_eq!(Histogram::bucket_index(1 << 20), 21);
        assert_eq!(Histogram::bucket_index((1 << 21) - 1), 21);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_ranges_partition_the_domain() {
        // Every value's bucket range must actually contain it.
        for v in [
            0u64,
            1,
            2,
            3,
            4,
            5,
            127,
            128,
            1 << 30,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let i = Histogram::bucket_index(v);
            let (lo, hi) = Histogram::bucket_range(i);
            assert!(lo <= v, "lo {lo} > v {v}");
            // The top bucket's hi is saturated at u64::MAX (inclusive there).
            assert!(v < hi || (i == BUCKETS - 1 && v <= hi), "v {v} >= hi {hi}");
        }
        // Adjacent interior buckets tile with no gap.
        for i in 1..BUCKETS - 2 {
            assert_eq!(
                Histogram::bucket_range(i).1,
                Histogram::bucket_range(i + 1).0
            );
        }
    }

    #[test]
    fn record_updates_summary_stats() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), None);
        for v in [5u64, 125, 375, 1750] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 5 + 125 + 375 + 1750);
        assert_eq!(h.min(), Some(5));
        assert_eq!(h.max(), Some(1750));
        assert_eq!(h.bucket(Histogram::bucket_index(125)), 1);
        assert_eq!(h.bucket(Histogram::bucket_index(375)), 1);
    }

    #[test]
    fn same_power_of_two_shares_a_bucket() {
        let mut h = Histogram::new();
        h.record(64);
        h.record(100);
        h.record(127);
        assert_eq!(h.bucket(7), 3, "64..128 all land in bucket 7");
        assert_eq!(h.nonzero_buckets().count(), 1);
        assert_eq!(h.nonzero_buckets().next(), Some((64, 128, 3)));
    }

    #[test]
    fn merge_combines_counts_and_extrema() {
        let mut a = Histogram::new();
        a.record(10);
        let mut b = Histogram::new();
        b.record(1000);
        b.record(2);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(2));
        assert_eq!(a.max(), Some(1000));
        let empty = Histogram::new();
        a.merge(&empty);
        assert_eq!(a.count(), 3);
        assert_eq!(
            a.min(),
            Some(2),
            "merging an empty histogram must not corrupt min"
        );
    }

    #[test]
    fn merged_quantiles_match_single_histogram_of_all_samples() {
        // Fleet aggregation merges per-tenant histograms; p50/p90/p99 of the
        // merge must equal what one histogram fed every sample would report.
        let shards: [&[u64]; 3] = [&[5, 40, 90, 125], &[200, 350, 800], &[1600, 3000, 9000]];
        let mut merged = Histogram::new();
        let mut reference = Histogram::new();
        for shard in shards {
            let mut h = Histogram::new();
            for &v in shard {
                h.record(v);
                reference.record(v);
            }
            merged.merge(&h);
        }
        assert_eq!(merged.count(), reference.count());
        assert_eq!(merged.sum(), reference.sum());
        assert_eq!(merged.p50(), reference.p50());
        assert_eq!(merged.p90(), reference.p90());
        assert_eq!(merged.p99(), reference.p99());
        assert_eq!(merged.quantile(0.0), reference.quantile(0.0));
        assert_eq!(merged.quantile(1.0), reference.quantile(1.0));
    }

    #[test]
    fn quantiles_on_empty_and_single_sample() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        h.record(375);
        // One sample: every quantile is that sample (clamped to [min, max]).
        assert_eq!(h.p50(), Some(375));
        assert_eq!(h.p90(), Some(375));
        assert_eq!(h.p99(), Some(375));
        assert_eq!(h.quantile(0.0), Some(375));
        assert_eq!(h.quantile(1.0), Some(375));
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let mut h = Histogram::new();
        for v in [5u64, 40, 90, 125, 200, 350, 800, 1600, 3000, 9000] {
            h.record(v);
        }
        let qs: Vec<u64> = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99]
            .iter()
            .map(|&q| h.quantile(q).unwrap())
            .collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "{qs:?}");
        assert!(qs.iter().all(|&v| (5..=9000).contains(&v)), "{qs:?}");
        // The median of ten samples lands near the 5th/6th values.
        let p50 = h.p50().unwrap();
        assert!((90..=350).contains(&p50), "p50 {p50}");
    }

    #[test]
    fn quantile_of_uniform_values_is_exact() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(64);
        }
        assert_eq!(h.p50(), Some(64));
        assert_eq!(h.p99(), Some(64), "clamped to the observed max");
    }

    #[test]
    fn quantile_edges_are_exact_min_and_max() {
        let mut h = Histogram::new();
        for v in [5u64, 40, 90, 125, 200, 350, 800, 1600, 3000, 9000] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(5), "q=0 is the observed minimum");
        assert_eq!(h.quantile(1.0), Some(9000), "q=1 is the observed maximum");
        // Out-of-range q clamps to the edges rather than extrapolating.
        assert_eq!(h.quantile(-3.0), Some(5));
        assert_eq!(h.quantile(7.5), Some(9000));
    }

    #[test]
    fn single_bucket_quantiles_stay_in_bucket() {
        // Values 64..128 share bucket 7; every quantile must stay inside
        // the observed [min, max] — not round up to the bucket's top.
        let mut h = Histogram::new();
        for v in [64u64, 80, 100, 120] {
            h.record(v);
        }
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile(q).unwrap();
            assert!((64..=120).contains(&v), "q={q} gave {v}");
        }
    }

    #[test]
    fn clear_resets_to_pristine_state() {
        let mut h = Histogram::new();
        for v in [5u64, 500, 50_000] {
            h.record(v);
        }
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.quantile(0.5), None, "post-clear quantiles are None");
        assert_eq!(h.nonzero_buckets().count(), 0);
        // Recording after clear behaves exactly like a fresh histogram:
        // min/max must not leak from before the clear.
        h.record(375);
        assert_eq!(h.p50(), Some(375));
        assert_eq!(h.quantile(0.0), Some(375));
        assert_eq!(h.quantile(1.0), Some(375));
    }

    proptest::proptest! {
        /// For any sample set: quantiles are monotone in q, bounded by the
        /// observed extrema, exact at the edges, and the interpolated
        /// estimate never lands above the bucket holding the target rank.
        #[test]
        fn quantile_properties(values in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut values = values;
            values.sort_unstable();
            let (lo, hi) = (values[0], *values.last().unwrap());
            proptest::prop_assert_eq!(h.quantile(0.0), Some(lo));
            proptest::prop_assert_eq!(h.quantile(1.0), Some(hi));
            let mut prev = lo;
            for i in 0..=20 {
                let q = f64::from(i) / 20.0;
                let v = h.quantile(q).unwrap();
                proptest::prop_assert!(v >= prev, "q={} went backwards: {} < {}", q, v, prev);
                proptest::prop_assert!((lo..=hi).contains(&v), "q={} out of range: {}", q, v);
                // The estimate must not leave the bucket of the true
                // rank-statistic (log2 buckets: same-bucket accuracy).
                if q > 0.0 && q < 1.0 {
                    let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
                    let exact = values[rank - 1];
                    proptest::prop_assert_eq!(
                        Histogram::bucket_index(v.max(1)),
                        Histogram::bucket_index(exact.max(1)),
                        "q={} estimate {} left the bucket of exact {}", q, v, exact
                    );
                }
                prev = v;
            }
        }

        /// Merging any chunked partition of a sample set is indistinguishable
        /// from recording every sample into one histogram — the invariant
        /// fleet aggregation relies on.
        #[test]
        fn merge_partition_invariance(
            values in proptest::collection::vec(0u64..1_000_000, 1..200),
            chunk in 1usize..32,
        ) {
            let mut reference = Histogram::new();
            for &v in &values {
                reference.record(v);
            }
            let mut merged = Histogram::new();
            for shard in values.chunks(chunk) {
                let mut h = Histogram::new();
                for &v in shard {
                    h.record(v);
                }
                merged.merge(&h);
            }
            proptest::prop_assert_eq!(merged.count(), reference.count());
            proptest::prop_assert_eq!(merged.sum(), reference.sum());
            proptest::prop_assert_eq!(merged.min(), reference.min());
            proptest::prop_assert_eq!(merged.max(), reference.max());
            for i in 0..=10 {
                let q = f64::from(i) / 10.0;
                proptest::prop_assert_eq!(merged.quantile(q), reference.quantile(q));
            }
        }

        /// clear() always restores the pristine state regardless of history.
        #[test]
        fn clear_is_pristine(values in proptest::collection::vec(0u64..u64::MAX, 0..64)) {
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            h.clear();
            proptest::prop_assert!(h.is_empty());
            proptest::prop_assert_eq!(h.quantile(0.5), None);
            h.record(7);
            proptest::prop_assert_eq!(h.min(), Some(7));
            proptest::prop_assert_eq!(h.max(), Some(7));
        }
    }

    #[test]
    fn json_contains_buckets_and_mean() {
        let mut h = Histogram::new();
        h.record(125);
        h.record(75);
        let j = h.to_json();
        assert!(j.contains("\"count\":2"));
        assert!(j.contains("\"mean\":100"));
        assert!(
            j.contains("[64,128,2]"),
            "both samples share bucket [64,128): {j}"
        );
    }
}
