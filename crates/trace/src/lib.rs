//! # efex-trace — exception-lifecycle observability
//!
//! The paper's whole argument rests on *measuring* the exception path
//! (Tables 2/3 are logic-analyzer-style phase timings), so the reproduction
//! needs a cross-cutting way to observe deliveries. This crate provides it:
//!
//! - [`TraceEvent`] / [`EventRing`]: a fixed-capacity, allocation-free ring
//!   buffer of exception lifecycle events (fault raised, kernel entered,
//!   state saved, user handler entered, handler returned, resumed), each
//!   carrying a cycle timestamp, raw `Cause.ExcCode`, faulting vaddr/PC, and
//!   the delivery path.
//! - [`Histogram`] / [`Metrics`]: per-exception-kind counters and log2-bucket
//!   cycle histograms for the deliver / handler / return phases, plus
//!   per-page fault counts.
//! - [`TraceSink`]: the emission interface, with [`NullSink`] (the zero-cost
//!   default), [`RingSink`] (in-memory ring), and [`JsonLinesSink`] (one JSON
//!   object per line to any writer).
//!
//! The crate is self-contained — it sits below `efex-simos` and `efex-core`
//! in the dependency graph so both the simulated kernel and the host-level
//! runtime can emit into the same sink. Serialization is hand-rolled JSON
//! (the build environment is offline; see `vendor/`).
//!
//! ## Example
//!
//! ```
//! use efex_trace::{EventKind, FaultClass, RingSink, TraceEvent, TracePath, TraceSink};
//! use std::rc::Rc;
//!
//! let ring = Rc::new(RingSink::with_capacity(16));
//! let sink: Rc<dyn TraceSink> = ring.clone();
//! sink.emit(&TraceEvent {
//!     kind: EventKind::FaultRaised,
//!     cycles: 1200,
//!     path: TracePath::FastUser,
//!     class: FaultClass::WriteProtect,
//!     exc_code: 1, // TLB modification
//!     vaddr: 0x0040_2000,
//!     pc: 0x0040_0104,
//!     ..TraceEvent::default()
//! });
//! assert_eq!(ring.events().len(), 1);
//! ```

#![warn(missing_docs)]

mod event;
mod histogram;
/// Hand-rolled JSON append helpers (the build is offline; no serde). Public
/// so the sibling crates that emit JSON shapes (e.g. `efex-health`) share
/// one escaping/formatting implementation.
pub mod json;
mod metrics;
mod sink;
mod snapshot;

pub use event::{EventKind, EventRing, FaultClass, TraceEvent, TracePath};
pub use histogram::Histogram;
pub use metrics::{KindMetrics, Metrics};
pub use sink::{null_sink, JsonLinesSink, NullSink, RingSink, SharedSink, TraceSink};
pub use snapshot::{Snapshot, StatsSnapshot};

pub use json::escape as json_escape;
