//! Tiny hand-rolled JSON helpers.
//!
//! The offline build cannot pull `serde`, and the shapes this crate emits are
//! flat, so a few append-style helpers are all that's needed. Helpers that
//! write a field append a trailing comma; callers finish objects with a
//! comma-less last field or by trimming.

/// Escapes a string for inclusion inside JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Appends `"name":value,`.
pub fn field_u64(out: &mut String, name: &str, value: u64) {
    out.push_str(&format!("\"{}\":{},", escape(name), value));
}

/// Appends `"name":value,` with a finite float (NaN/inf become 0).
pub fn field_f64(out: &mut String, name: &str, value: f64) {
    let v = if value.is_finite() { value } else { 0.0 };
    out.push_str(&format!("\"{}\":{},", escape(name), v));
}

/// Appends `"name":"value",`.
pub fn field_str(out: &mut String, name: &str, value: &str) {
    out.push_str(&format!("\"{}\":\"{}\",", escape(name), escape(value)));
}

/// Appends `"name":` followed by a raw (already-serialized) JSON value and a
/// comma.
pub fn field_raw(out: &mut String, name: &str, raw: &str) {
    out.push_str(&format!("\"{}\":{},", escape(name), raw));
}

/// Removes a trailing comma (if any) and closes the object.
pub fn close_object(out: &mut String) {
    if out.ends_with(',') {
        out.pop();
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("a\nb"), "a\\nb");
        assert_eq!(escape("a\u{01}b"), "a\\u0001b");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn object_assembly() {
        let mut out = String::from("{");
        field_str(&mut out, "path", "fast-user");
        field_u64(&mut out, "count", 3);
        close_object(&mut out);
        assert_eq!(out, "{\"path\":\"fast-user\",\"count\":3}");
    }
}
