//! Per-exception-kind metrics: counters, phase histograms, per-page fault
//! counts.

use crate::event::{FaultClass, TracePath};
use crate::histogram::Histogram;
use crate::json;
use crate::snapshot::{Snapshot, StatsSnapshot};
use std::collections::BTreeMap;

/// Metrics for one (delivery path, fault class) pair.
#[derive(Clone, Debug, Default)]
pub struct KindMetrics {
    /// Faults delivered.
    pub count: u64,
    /// Deliveries that could not complete on their configured path and fell
    /// back to a specified degradation (e.g. fast-path comm-page pinning
    /// violated → Unix-signal delivery).
    pub degraded: u64,
    /// Cycles from fault to user-handler entry.
    pub deliver: Histogram,
    /// Cycles spent inside the user handler.
    pub handler: Histogram,
    /// Cycles from handler return to resumption.
    pub ret: Histogram,
    /// Faults per page (vaddr >> 12), for spotting hot pages.
    pub pages: BTreeMap<u32, u64>,
}

impl KindMetrics {
    /// True when nothing has been recorded for this (path, class) cell.
    pub fn is_empty(&self) -> bool {
        self.count == 0
            && self.degraded == 0
            && self.deliver.is_empty()
            && self.handler.is_empty()
            && self.ret.is_empty()
            && self.pages.is_empty()
    }

    /// Accumulates another cell's counts and histograms into this one.
    pub fn merge(&mut self, other: &KindMetrics) {
        self.count += other.count;
        self.degraded += other.degraded;
        self.deliver.merge(&other.deliver);
        self.handler.merge(&other.handler);
        self.ret.merge(&other.ret);
        for (&page, &n) in &other.pages {
            *self.pages.entry(page).or_insert(0) += n;
        }
    }

    /// Serializes the cell as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        json::field_u64(&mut out, "count", self.count);
        if self.degraded > 0 {
            json::field_u64(&mut out, "degraded", self.degraded);
        }
        json::field_raw(&mut out, "deliver_cycles", &self.deliver.to_json());
        json::field_raw(&mut out, "handler_cycles", &self.handler.to_json());
        json::field_raw(&mut out, "return_cycles", &self.ret.to_json());
        let mut pages = String::from("{");
        for (page, n) in &self.pages {
            json::field_u64(&mut pages, &format!("{:#07x}", page), *n);
        }
        json::close_object(&mut pages);
        json::field_raw(&mut out, "faults_per_page", &pages);
        json::close_object(&mut out);
        out
    }
}

/// Metrics table indexed by delivery path and fault class.
#[derive(Clone, Debug)]
pub struct Metrics {
    per: [[KindMetrics; FaultClass::ALL.len()]; TracePath::ALL.len()],
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics {
            per: std::array::from_fn(|_| std::array::from_fn(|_| KindMetrics::default())),
        }
    }
}

impl Metrics {
    /// An empty table.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// The cell for one (path, class) pair.
    pub fn kind(&self, path: TracePath, class: FaultClass) -> &KindMetrics {
        &self.per[path.index()][class.index()]
    }

    /// Mutable access to the cell for one (path, class) pair.
    pub fn kind_mut(&mut self, path: TracePath, class: FaultClass) -> &mut KindMetrics {
        &mut self.per[path.index()][class.index()]
    }

    /// Records one delivered fault and its deliver-phase cycles.
    pub fn record_deliver(&mut self, path: TracePath, class: FaultClass, cycles: u64) {
        let k = self.kind_mut(path, class);
        k.count += 1;
        k.deliver.record(cycles);
    }

    /// Records the handler-phase cycles of one delivery.
    pub fn record_handler(&mut self, path: TracePath, class: FaultClass, cycles: u64) {
        self.kind_mut(path, class).handler.record(cycles);
    }

    /// Records the return-phase cycles of one delivery.
    pub fn record_return(&mut self, path: TracePath, class: FaultClass, cycles: u64) {
        self.kind_mut(path, class).ret.record(cycles);
    }

    /// Bumps the per-page fault count for the page containing `vaddr`.
    pub fn record_page_fault(&mut self, path: TracePath, class: FaultClass, vaddr: u32) {
        *self
            .kind_mut(path, class)
            .pages
            .entry(vaddr >> 12)
            .or_insert(0) += 1;
    }

    /// Records one delivery that fell back to a specified degradation
    /// instead of completing on its configured path. `path` is the path the
    /// delivery was *configured* for (the one that degraded).
    pub fn record_degraded(&mut self, path: TracePath, class: FaultClass) {
        self.kind_mut(path, class).degraded += 1;
    }

    /// Total faults across every path and class.
    pub fn total_faults(&self) -> u64 {
        self.per.iter().flatten().map(|k| k.count).sum()
    }

    /// Total degraded deliveries across every path and class.
    pub fn degraded_deliveries(&self) -> u64 {
        self.per.iter().flatten().map(|k| k.degraded).sum()
    }

    /// Accumulates another table into this one, cell by cell.
    pub fn merge(&mut self, other: &Metrics) {
        for (mine, theirs) in self
            .per
            .iter_mut()
            .flatten()
            .zip(other.per.iter().flatten())
        {
            mine.merge(theirs);
        }
    }

    /// Iterates the non-empty (path, class) cells.
    pub fn iter_nonempty(&self) -> impl Iterator<Item = (TracePath, FaultClass, &KindMetrics)> {
        TracePath::ALL.iter().flat_map(move |&p| {
            FaultClass::ALL.iter().filter_map(move |&c| {
                let k = self.kind(p, c);
                (!k.is_empty()).then_some((p, c, k))
            })
        })
    }

    /// JSON object `{"<path>":{"<class>":{…}}}` containing only non-empty
    /// cells (paths with no traffic appear as empty objects).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for &path in &TracePath::ALL {
            let mut per_path = String::from("{");
            for &class in &FaultClass::ALL {
                let k = self.kind(path, class);
                if !k.is_empty() {
                    json::field_raw(&mut per_path, class.as_str(), &k.to_json());
                }
            }
            json::close_object(&mut per_path);
            json::field_raw(&mut out, path.as_str(), &per_path);
        }
        json::close_object(&mut out);
        out
    }
}

impl Snapshot for Metrics {
    /// Flattens the non-empty cells into counters: per (path, class) the
    /// fault count (and degraded count, when nonzero) and the deliver-phase
    /// p50/p90/p99 cycle estimates, keyed `"<path>/<class>/<stat>"`, plus
    /// the overall `total_faults` and `degraded_deliveries`.
    fn snapshot(&self) -> StatsSnapshot {
        let mut s = StatsSnapshot::new("trace")
            .counter("total_faults", self.total_faults())
            .counter("degraded_deliveries", self.degraded_deliveries());
        for (path, class, k) in self.iter_nonempty() {
            let key = |stat: &str| format!("{path}/{class}/{stat}");
            s = s.counter(key("count"), k.count);
            if k.degraded > 0 {
                s = s.counter(key("degraded"), k.degraded);
            }
            for (phase, h) in [("deliver", &k.deliver), ("handler", &k.handler)] {
                if h.is_empty() {
                    continue;
                }
                s = s
                    .counter(key(&format!("{phase}_p50")), h.p50().unwrap_or(0))
                    .counter(key(&format!("{phase}_p90")), h.p90().unwrap_or(0))
                    .counter(key(&format!("{phase}_p99")), h.p99().unwrap_or(0));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_the_right_cell() {
        let mut m = Metrics::new();
        m.record_deliver(TracePath::FastUser, FaultClass::WriteProtect, 375);
        m.record_return(TracePath::FastUser, FaultClass::WriteProtect, 75);
        m.record_handler(TracePath::FastUser, FaultClass::WriteProtect, 40);
        let k = m.kind(TracePath::FastUser, FaultClass::WriteProtect);
        assert_eq!(k.count, 1);
        assert_eq!(k.deliver.max(), Some(375));
        assert_eq!(k.ret.max(), Some(75));
        assert_eq!(k.handler.max(), Some(40));
        assert!(m
            .kind(TracePath::UnixSignals, FaultClass::WriteProtect)
            .is_empty());
        assert_eq!(m.total_faults(), 1);
    }

    #[test]
    fn page_fault_counts_key_by_page() {
        let mut m = Metrics::new();
        m.record_page_fault(TracePath::FastUser, FaultClass::PageFault, 0x0040_2004);
        m.record_page_fault(TracePath::FastUser, FaultClass::PageFault, 0x0040_2ffc);
        m.record_page_fault(TracePath::FastUser, FaultClass::PageFault, 0x0040_3000);
        let k = m.kind(TracePath::FastUser, FaultClass::PageFault);
        assert_eq!(k.pages.get(&0x402), Some(&2), "same page coalesces");
        assert_eq!(k.pages.get(&0x403), Some(&1));
    }

    #[test]
    fn merge_accumulates_across_tables() {
        let mut a = Metrics::new();
        a.record_deliver(TracePath::UnixSignals, FaultClass::Breakpoint, 1750);
        let mut b = Metrics::new();
        b.record_deliver(TracePath::UnixSignals, FaultClass::Breakpoint, 1800);
        b.record_page_fault(TracePath::UnixSignals, FaultClass::Breakpoint, 0x1000);
        a.merge(&b);
        let k = a.kind(TracePath::UnixSignals, FaultClass::Breakpoint);
        assert_eq!(k.count, 2);
        assert_eq!(k.deliver.count(), 2);
        assert_eq!(k.pages.get(&1), Some(&1));
    }

    #[test]
    fn json_nests_path_then_class() {
        let mut m = Metrics::new();
        m.record_deliver(TracePath::HardwareVectored, FaultClass::Subpage, 190);
        let j = m.to_json();
        assert!(j.contains("\"hardware-vectored\":{\"subpage\":{"), "{j}");
        assert!(j.contains("\"deliver_cycles\""));
        // Quiet paths still appear, as empty objects.
        assert!(j.contains("\"unix-signals\":{}"));
    }

    #[test]
    fn snapshot_surfaces_counts_and_quantiles() {
        let mut m = Metrics::new();
        for c in [100u64, 200, 300] {
            m.record_deliver(TracePath::FastUser, FaultClass::WriteProtect, c);
        }
        let s = m.snapshot();
        assert_eq!(s.component, "trace");
        assert_eq!(s.get("total_faults"), Some(3));
        assert_eq!(s.get("fast-user/write-protect/count"), Some(3));
        let p50 = s.get("fast-user/write-protect/deliver_p50").unwrap();
        let p99 = s.get("fast-user/write-protect/deliver_p99").unwrap();
        assert!((100..=300).contains(&p50));
        assert!(p50 <= p99 && p99 <= 300);
        assert_eq!(
            s.get("unix-signals/write-protect/count"),
            None,
            "quiet cells stay out of the snapshot"
        );
    }

    #[test]
    fn degraded_deliveries_are_counted_and_snapshotted() {
        let mut m = Metrics::new();
        assert_eq!(m.degraded_deliveries(), 0);
        let s = m.snapshot();
        assert_eq!(s.get("degraded_deliveries"), Some(0), "key always present");
        m.record_degraded(TracePath::FastUser, FaultClass::WriteProtect);
        m.record_degraded(TracePath::FastUser, FaultClass::WriteProtect);
        m.record_degraded(TracePath::FastUser, FaultClass::Breakpoint);
        assert_eq!(m.degraded_deliveries(), 3);
        let s = m.snapshot();
        assert_eq!(s.get("degraded_deliveries"), Some(3));
        assert_eq!(s.get("fast-user/write-protect/degraded"), Some(2));
        assert_eq!(s.get("fast-user/breakpoint/degraded"), Some(1));
        // Degraded-only cells are non-empty (visible in JSON and merge).
        let mut b = Metrics::new();
        b.merge(&m);
        assert_eq!(b.degraded_deliveries(), 3);
        assert!(b.to_json().contains("\"degraded\":2"));
    }

    #[test]
    fn iter_nonempty_skips_quiet_cells() {
        let mut m = Metrics::new();
        m.record_deliver(TracePath::FastUser, FaultClass::Breakpoint, 125);
        m.record_deliver(TracePath::FastUser, FaultClass::Subpage, 475);
        let cells: Vec<_> = m.iter_nonempty().map(|(p, c, _)| (p, c)).collect();
        assert_eq!(
            cells,
            [
                (TracePath::FastUser, FaultClass::Breakpoint),
                (TracePath::FastUser, FaultClass::Subpage)
            ]
        );
    }
}
