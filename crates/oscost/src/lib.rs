//! # efex-oscost — exception delivery cost models for 1994 operating systems
//!
//! Reproduces the paper's **Table 1**: the time to deliver a simple
//! exception (and a write-protection exception) to a null user-level
//! handler on five contemporary hardware/software combinations.
//!
//! We obviously cannot run Ultrix, Mach, SunOS, Windows NT, or OSF/1; the
//! paper itself treats Table 1 as motivation measured on machines it had on
//! hand. This crate models each system as a **pipeline of delivery phases**
//! (kernel entry & state save, cause translation and posting, user-server
//! round trips for micro-kernels, frame construction, handler dispatch,
//! kernel re-entry to dismiss), each with a cycle cost at that system's
//! clock. Phase weights were chosen so the totals land on the anchors the
//! paper's text states:
//!
//! - Ultrix 4.2A / 25 MHz R3000: ~80 µs round trip;
//! - Mach 3.0 + UX server: ~2 ms (the exception "travels to the Unix server
//!   and then to the application");
//! - raw Mach (no Unix server): 256 µs;
//! - SunOS 4.1.3 / 36 MHz SPARC: 69 µs, "the best case";
//! - Windows NT / 40 MHz R4000 and OSF/1 / 200 MHz Alpha: between those
//!   bounds (per-cell values are reconstructions — the scanned table did
//!   not survive into our source text — and are labeled as such in
//!   EXPERIMENTS.md).

#![warn(missing_docs)]

use std::fmt;

/// A delivery phase in a conventional exception path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Hardware vectoring, kernel entry, full state save.
    KernelEntry,
    /// Decode the cause and translate it into the OS's signal/event.
    Translate,
    /// Post/queue the event to the faulting task.
    Post,
    /// Micro-kernel only: RPC to the operating-system personality server
    /// and back.
    ServerRoundTrip,
    /// Build the user-visible context (sigcontext / EXCEPTION_RECORD).
    BuildFrame,
    /// Switch to user mode and run the (null) handler.
    Dispatch,
    /// Re-enter the kernel to dismiss the exception and restore state.
    Dismiss,
    /// Extra memory-management work for write-protection faults.
    VmWork,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Phase::KernelEntry => "kernel entry + state save",
            Phase::Translate => "cause translation",
            Phase::Post => "event posting",
            Phase::ServerRoundTrip => "OS-server round trip",
            Phase::BuildFrame => "user frame construction",
            Phase::Dispatch => "handler dispatch",
            Phase::Dismiss => "dismiss + state restore",
            Phase::VmWork => "memory-management work",
        })
    }
}

/// A modeled operating system / hardware combination.
#[derive(Clone, Debug, PartialEq)]
pub struct SystemModel {
    name: &'static str,
    clock_mhz: f64,
    /// `(phase, cycles)` for a simple synchronous exception round trip.
    phases: Vec<(Phase, u64)>,
    /// Extra cycles a write-protection fault adds (page-table reads,
    /// validation).
    vm_extra_cycles: u64,
    /// Which phases count as "delivery" (the rest are the return half).
    delivery_phases: usize,
}

impl SystemModel {
    /// The system's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The modeled clock in MHz.
    pub fn clock_mhz(&self) -> f64 {
        self.clock_mhz
    }

    /// The phase breakdown for a simple exception.
    pub fn phases(&self) -> &[(Phase, u64)] {
        &self.phases
    }

    /// Time to deliver a simple exception to a null user handler, µs.
    pub fn deliver_simple_micros(&self) -> f64 {
        let cy: u64 = self.phases[..self.delivery_phases]
            .iter()
            .map(|&(_, c)| c)
            .sum();
        cy as f64 / self.clock_mhz
    }

    /// Time to deliver a write-protection exception, µs.
    pub fn deliver_write_prot_micros(&self) -> f64 {
        self.deliver_simple_micros() + self.vm_extra_cycles as f64 / self.clock_mhz
    }

    /// Time for the handler-return half (dismiss through the kernel), µs.
    pub fn return_micros(&self) -> f64 {
        let cy: u64 = self.phases[self.delivery_phases..]
            .iter()
            .map(|&(_, c)| c)
            .sum();
        cy as f64 / self.clock_mhz
    }

    /// Full round trip (delivery + return) for a simple exception, µs —
    /// the bottom row of Table 1.
    pub fn round_trip_micros(&self) -> f64 {
        self.deliver_simple_micros() + self.return_micros()
    }
}

/// Builds the five Table 1 systems (plus raw Mach as the paper's fourth
/// column).
pub fn table1_systems() -> Vec<SystemModel> {
    use Phase::*;
    vec![
        SystemModel {
            // 25 MHz R3000; anchor: ~80 µs round trip, 12 µs null syscall.
            name: "Ultrix 4.2A (DS5000/200, 25 MHz R3000)",
            clock_mhz: 25.0,
            phases: vec![
                (KernelEntry, 350),
                (Translate, 120),
                (Post, 180),
                (BuildFrame, 550),
                (Dispatch, 100),
                (Dismiss, 700),
            ],
            vm_extra_cycles: 450,
            delivery_phases: 5,
        },
        SystemModel {
            // Mach 3.0 with the UX Unix server: the exception is a message
            // to the server, which re-dispatches to the application.
            name: "Mach/UX (MK83/UX41, DS5000/200)",
            clock_mhz: 25.0,
            phases: vec![
                (KernelEntry, 400),
                (Translate, 200),
                (ServerRoundTrip, 38_000),
                (Post, 400),
                (BuildFrame, 1_200),
                (Dispatch, 200),
                (Dismiss, 9_600),
            ],
            vm_extra_cycles: 1_500,
            delivery_phases: 6,
        },
        SystemModel {
            // Raw Mach exception interface (no Unix server): 256 µs.
            name: "Mach (raw kernel interface)",
            clock_mhz: 25.0,
            phases: vec![
                (KernelEntry, 400),
                (Translate, 200),
                (Post, 800),
                (BuildFrame, 2_000),
                (Dispatch, 200),
                (Dismiss, 2_800),
            ],
            vm_extra_cycles: 900,
            delivery_phases: 5,
        },
        SystemModel {
            // SunOS 4.1.3 on a 36 MHz SPARC-10: 69 µs, the paper's best.
            name: "SunOS 4.1.3 (SPARC-10, 36 MHz)",
            clock_mhz: 36.0,
            phases: vec![
                (KernelEntry, 420),
                (Translate, 110),
                (Post, 170),
                (BuildFrame, 680),
                (Dispatch, 100),
                (Dismiss, 1_000),
            ],
            vm_extra_cycles: 500,
            delivery_phases: 5,
        },
        SystemModel {
            // Windows NT on a 40 MHz R4000: exceptions handled in the NT
            // kernel despite the micro-kernel structure.
            name: "Windows NT (40 MHz R4000)",
            clock_mhz: 40.0,
            phases: vec![
                (KernelEntry, 700),
                (Translate, 300),
                (Post, 400),
                (BuildFrame, 1_400),
                (Dispatch, 200),
                (Dismiss, 1_800),
            ],
            vm_extra_cycles: 900,
            delivery_phases: 5,
        },
        SystemModel {
            // DEC OSF/1 V1.3 on a 200 MHz Alpha: a fast machine running a
            // conventional path — the point the paper makes is that clock
            // alone does not fix the structure.
            name: "OSF/1 V1.3 (AXP 3000/500X, 200 MHz)",
            clock_mhz: 200.0,
            phases: vec![
                (KernelEntry, 3_000),
                (Translate, 800),
                (Post, 1_200),
                (BuildFrame, 5_000),
                (Dispatch, 800),
                (Dismiss, 8_000),
            ],
            vm_extra_cycles: 4_000,
            delivery_phases: 5,
        },
    ]
}

/// Convenience: the Ultrix model (the baseline the rest of the repo
/// compares against).
pub fn ultrix() -> SystemModel {
    table1_systems().remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_name(n: &str) -> SystemModel {
        table1_systems()
            .into_iter()
            .find(|s| s.name().contains(n))
            .unwrap()
    }

    #[test]
    fn ultrix_round_trip_near_80us() {
        let rt = by_name("Ultrix").round_trip_micros();
        assert!((75.0..=85.0).contains(&rt), "got {rt}");
    }

    #[test]
    fn mach_ux_is_about_two_milliseconds() {
        let rt = by_name("Mach/UX").round_trip_micros();
        assert!((1800.0..=2200.0).contains(&rt), "got {rt}");
    }

    #[test]
    fn raw_mach_is_256us() {
        let rt = by_name("raw kernel").round_trip_micros();
        assert!((240.0..=270.0).contains(&rt), "got {rt}");
    }

    #[test]
    fn sunos_is_best_at_69us() {
        let systems = table1_systems();
        let sunos = by_name("SunOS").round_trip_micros();
        assert!((65.0..=73.0).contains(&sunos), "got {sunos}");
        for s in &systems {
            assert!(
                s.round_trip_micros() >= sunos - 0.5,
                "{} beat SunOS, contradicting the paper",
                s.name()
            );
        }
    }

    #[test]
    fn write_protection_costs_more_than_simple() {
        for s in table1_systems() {
            assert!(
                s.deliver_write_prot_micros() > s.deliver_simple_micros(),
                "{}",
                s.name()
            );
        }
    }

    #[test]
    fn delivery_plus_return_is_round_trip() {
        for s in table1_systems() {
            let sum = s.deliver_simple_micros() + s.return_micros();
            assert!((sum - s.round_trip_micros()).abs() < 1e-9);
        }
    }
}
