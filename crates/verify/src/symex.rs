//! Symbolic whole-image exploration of the exception delivery path.
//!
//! The abstract interpreter in [`crate::analyze`] proves per-image,
//! path-insensitive facts. This module is the path-*sensitive* layer: it
//! symbolically executes the **composed** system — kernel vector +
//! trampoline + registered guest handler, stitched together by
//! [`Images`] — once per *(exception class ×
//! delivery variant)*, enumerating every reachable path from the hardware
//! raise to the resume of user code.
//!
//! The machine state is abstract where it must be and concrete where it
//! can be:
//!
//! - **registers** carry a small symbolic value domain ([`SymVal`]):
//!   partially-known bit patterns, or opaque tokens ([`Token`]) for the
//!   user's original register values, `EPC`, `BadVaddr`, `Cause`, the
//!   comm-page base, and the host-built sigcontext pointer — each with a
//!   known byte offset, so pointer arithmetic stays precise;
//! - **memory** is a word lattice keyed three ways: canonical comm-page
//!   offsets (both the user mapping and the kernel kseg0 alias normalize to
//!   the same key, so aliasing is exact), concrete addresses, and
//!   (token, offset) pairs for symbolic bases such as the user stack;
//! - **control flow** folds branches whose conditions are known (via
//!   [`efex_mips::sem`]), forks on the rest, resolves `jal`/`jr` through a
//!   shadow call stack, and treats host calls as cost intervals with their
//!   architecturally specified side effects (UTLB refill and retry, comm
//!   frame writeback, signal-trampoline setup, `sigreturn`).
//!
//! Along every path the explorer checks the paper's protocol invariants —
//! save/restore comm-slot pairing, no read of an undefined comm word,
//! recursive-exception windows confined to the documented ones, refill
//! termination — and accumulates exact cycle counts (plus host-side slack),
//! yielding per-scenario static `[min, max]` bounds that the `lint` binary
//! cross-checks against the dynamic Table 2 numbers in the recorded
//! baseline.

use std::collections::{BTreeMap, BTreeSet};

use efex_mips::cp0::{cause, status, Cp0Reg};
use efex_mips::exception::ExcCode;
use efex_mips::isa::{Instruction, Reg};
use efex_mips::sem;

use crate::cfg::{branch_target, jump_target};
use crate::diag::{static_cost, Finding, Lint};
use crate::interproc::{CallGraph, Images};

// ---------------------------------------------------------------------------
// Value domain
// ---------------------------------------------------------------------------

/// Opaque symbolic quantities the explorer tracks by name rather than value.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Token {
    /// The user's register `r` at the instant the exception was raised.
    Orig(Reg),
    /// The faulting program counter (CP0 `EPC`).
    Epc,
    /// The faulting virtual address (CP0 `BadVaddr`).
    BadVaddr,
    /// The full CP0 `Cause` word (the ExcCode field *is* known per
    /// scenario; the token form survives stores so state-saving can be
    /// recognized).
    Cause,
    /// The comm-page kseg0 alias when registration metadata leaves it
    /// unknown (kernel-image-only exploration).
    CommBase,
    /// The registered handler entry when registration metadata leaves it
    /// unknown.
    Handler,
    /// The sigcontext pointer the host builds for standard-path delivery.
    SigCtx,
}

/// An abstract register or memory word.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SymVal {
    /// A partially known bit pattern: bit `i` equals `val` bit `i` wherever
    /// `mask` bit `i` is set; unknown elsewhere. `mask == u32::MAX` is a
    /// constant. Unknown `val` bits are normalized to zero.
    Bits {
        /// The known bit values (zero where unknown).
        val: u32,
        /// Which bits of `val` are known.
        mask: u32,
    },
    /// An opaque token plus a known byte offset.
    Sym(Token, i32),
    /// Completely unknown.
    Top,
}

impl SymVal {
    /// A fully known constant.
    pub fn known(v: u32) -> SymVal {
        SymVal::Bits {
            val: v,
            mask: u32::MAX,
        }
    }

    /// A bare token.
    pub fn tok(t: Token) -> SymVal {
        SymVal::Sym(t, 0)
    }

    /// The concrete value, when fully known.
    pub fn as_const(self) -> Option<u32> {
        match self {
            SymVal::Bits { val, mask } if mask == u32::MAX => Some(val),
            _ => None,
        }
    }
}

/// The symbolic value of the `Cause` register for `class`: the ExcCode
/// field (bits 2..=6) and the reserved low bits are known, the
/// branch-delay and interrupt-pending bits are not.
fn cause_bits(class: ExcCode) -> SymVal {
    let known = (cause::EXC_MASK << cause::EXC_SHIFT) | 0x3;
    SymVal::Bits {
        val: class.code() << cause::EXC_SHIFT,
        mask: known,
    }
}

/// Status at exception entry from user mode: KUc = 0 (kernel), KUp = 1
/// (came from user); everything else unknown.
fn status_bits() -> SymVal {
    SymVal::Bits {
        val: status::KUP,
        mask: status::KUP | status::KUC,
    }
}

/// Folds an ALU instruction over symbolic operands. `a` is the `rs`
/// (or `base`) operand, `b` the `rt` operand.
fn eval_alu(inst: Instruction, a: SymVal, b: SymVal) -> SymVal {
    use Instruction::*;
    // Fully concrete: defer to the interpreter's own semantics.
    if let (Some(ca), Some(cb)) = (concrete(a), concrete(b)) {
        if let Some(r) = sem::alu_result(inst, ca, cb) {
            return SymVal::known(r);
        }
    }
    match inst {
        // Token ± known offset keeps the token.
        Addi { imm, .. } | Addiu { imm, .. } => match a {
            SymVal::Sym(t, off) => SymVal::Sym(t, off.wrapping_add(imm as i32)),
            SymVal::Bits { .. } | SymVal::Top => bits_binop(inst, a, b),
        },
        Addu { .. } => match (a, b) {
            (SymVal::Sym(t, off), other) | (other, SymVal::Sym(t, off)) => match other.as_const() {
                Some(c) => SymVal::Sym(t, off.wrapping_add(c as i32)),
                None => SymVal::Top,
            },
            _ => bits_binop(inst, a, b),
        },
        Subu { .. } => match (a, b) {
            (SymVal::Sym(t, off), other) => match other.as_const() {
                Some(c) => SymVal::Sym(t, off.wrapping_sub(c as i32)),
                None => match b {
                    SymVal::Sym(t2, off2) if t2 == t => {
                        SymVal::known((off.wrapping_sub(off2)) as u32)
                    }
                    _ => SymVal::Top,
                },
            },
            _ => bits_binop(inst, a, b),
        },
        // `or rd, rs, $zero` (the `move` idiom) copies symbolically.
        Or { .. } => match (a.as_const(), b.as_const()) {
            (Some(0), _) => b,
            (_, Some(0)) => a,
            _ => bits_binop(inst, a, b),
        },
        _ => bits_binop(inst, a, b),
    }
}

fn concrete(v: SymVal) -> Option<u32> {
    v.as_const()
}

fn as_bits(v: SymVal) -> Option<(u32, u32)> {
    match v {
        SymVal::Bits { val, mask } => Some((val, mask)),
        _ => None,
    }
}

/// Bit-level partial evaluation for the operations the delivery path uses
/// on partially known words (`Cause`, `Status`, loaded mask words).
fn bits_binop(inst: Instruction, a: SymVal, b: SymVal) -> SymVal {
    use Instruction::*;
    match inst {
        Andi { imm, .. } => {
            let imm = imm as u32;
            if let Some((val, mask)) = as_bits(a) {
                let known = mask | !imm;
                let v = val & imm & known;
                norm_bits(v, known)
            } else {
                // Unknown & imm still pins every bit cleared by imm to 0.
                norm_bits(0, !imm)
            }
        }
        Ori { imm, .. } => {
            let imm = imm as u32;
            if let Some((val, mask)) = as_bits(a) {
                let known = mask | imm;
                norm_bits((val | imm) & known, known)
            } else {
                norm_bits(imm, imm)
            }
        }
        Xori { imm, .. } => match as_bits(a) {
            Some((val, mask)) => norm_bits((val ^ imm as u32) & mask, mask),
            None => SymVal::Top,
        },
        Srl { shamt, .. } => shift_right(b, shamt as u32),
        Sra { shamt, .. } => shift_right_arith(b, shamt as u32),
        Sll { shamt, .. } => match as_bits(b) {
            Some((val, mask)) => {
                let k = shamt as u32;
                norm_bits(val << k, (mask << k) | low_ones(k))
            }
            None => {
                let k = shamt as u32;
                norm_bits(0, low_ones(k))
            }
        },
        Srlv { .. } => match concrete(a) {
            Some(k) => shift_right(b, k & 31),
            None => SymVal::Top,
        },
        Sllv { .. } => match concrete(a) {
            Some(k) => bits_binop(
                Sll {
                    rd: Reg::ZERO,
                    rt: Reg::ZERO,
                    shamt: (k & 31) as u8,
                },
                a,
                b,
            ),
            None => SymVal::Top,
        },
        Lui { imm, .. } => SymVal::known((imm as u32) << 16),
        _ => SymVal::Top,
    }
}

fn norm_bits(val: u32, mask: u32) -> SymVal {
    SymVal::Bits {
        val: val & mask,
        mask,
    }
}

fn low_ones(k: u32) -> u32 {
    if k == 0 {
        0
    } else {
        u32::MAX >> (32 - k)
    }
}

fn shift_right(v: SymVal, k: u32) -> SymVal {
    match as_bits(v) {
        Some((val, mask)) => norm_bits(val >> k, (mask >> k) | high_known(k)),
        None => high_known_bits(k),
    }
}

/// After a logical right shift by `k`, the top `k` bits are known zero.
fn high_known(k: u32) -> u32 {
    if k == 0 {
        0
    } else {
        !(u32::MAX >> k)
    }
}

fn high_known_bits(k: u32) -> SymVal {
    norm_bits(0, high_known(k))
}

fn shift_right_arith(v: SymVal, k: u32) -> SymVal {
    match as_bits(v) {
        Some((val, mask)) => norm_bits(((val as i32) >> k) as u32, ((mask as i32) >> k) as u32),
        None => SymVal::Top,
    }
}

/// Whether a conditional branch is taken: `Some` when decidable from the
/// symbolic operands, `None` to fork.
fn branch_decision(inst: Instruction, a: SymVal, b: SymVal) -> Option<bool> {
    use Instruction::*;
    if let (Some(ca), Some(cb)) = (concrete(a), concrete(b)) {
        return sem::branch_taken(inst, ca, cb);
    }
    match inst {
        Beq { .. } | Bne { .. } => {
            let eq = match (a, b) {
                (SymVal::Sym(t1, o1), SymVal::Sym(t2, o2)) if t1 == t2 => Some(o1 == o2),
                _ => {
                    // Known bits that disagree prove inequality.
                    let (av, am) = as_bits(a)?;
                    let (bv, bm) = as_bits(b)?;
                    let both = am & bm;
                    if (av ^ bv) & both != 0 {
                        Some(false)
                    } else {
                        None
                    }
                }
            }?;
            Some(if matches!(inst, Beq { .. }) { eq } else { !eq })
        }
        Bltz { .. } | Bltzal { .. } | Bgez { .. } | Bgezal { .. } => {
            let (val, mask) = as_bits(a)?;
            if mask & 0x8000_0000 == 0 {
                return None;
            }
            let neg = val & 0x8000_0000 != 0;
            Some(if matches!(inst, Bltz { .. } | Bltzal { .. }) {
                neg
            } else {
                !neg
            })
        }
        Blez { .. } | Bgtz { .. } => {
            let (val, mask) = as_bits(a)?;
            if mask & 0x8000_0000 != 0 && val & 0x8000_0000 != 0 {
                // Known negative.
                return Some(matches!(inst, Blez { .. }));
            }
            None
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Model of one u-area word the kernel reads during delivery.
#[derive(Clone, Copy, Debug)]
pub enum UareaWord {
    /// The registration gave this word a concrete value.
    Known(u32),
    /// The comm-page kseg0 alias slot (concrete when registration metadata
    /// is available, [`Token::CommBase`] otherwise).
    CommBase,
    /// The registered-handler slot (concrete when available,
    /// [`Token::Handler`] otherwise).
    Handler,
    /// Unconstrained.
    Unknown,
}

/// Model of the per-process u-area the kernel consults on the fast path.
#[derive(Clone, Debug)]
pub struct UareaModel {
    /// Base virtual address (kseg0).
    pub base: u32,
    /// Length in bytes.
    pub len: u32,
    /// Word models by offset; absent offsets read as unknown.
    pub words: BTreeMap<u32, UareaWord>,
}

/// Model of the pinned communication page and its save-slot protocol.
#[derive(Clone, Debug)]
pub struct CommModel {
    /// User-space virtual address of the page.
    pub user_base: u32,
    /// Kernel kseg0 alias, when registration metadata pins it.
    pub kseg0_base: Option<u32>,
    /// Page length in bytes.
    pub page_len: u32,
    /// Bytes per per-class frame.
    pub frame_size: u32,
    /// Frame-relative offset of the saved-EPC word.
    pub epc_slot: u32,
    /// `(frame-relative offset, owning register)` for each protocol save
    /// slot: the canonical slot assignment of Section 3.2.1.
    pub slot_owners: Vec<(u32, Reg)>,
}

/// Host-side cost intervals (from `efex-simos`'s calibrated cost table)
/// and standard-path continuation metadata.
#[derive(Clone, Debug)]
pub struct HostModel {
    /// Cycles for a UTLB refill that installs a mapping and retries.
    pub refill_cycles: u64,
    /// `[lo, hi]` cycles for the fast TLB-exception host work (`hcall 2`).
    pub fast_tlb: (u64, u64),
    /// `[lo, hi]` cycles for standard (Unix signal) delivery (`hcall 1`).
    pub standard: (u64, u64),
    /// Extra standard-path cycles for TLB-class faults (VM fault work).
    pub standard_tlb_extra: u64,
    /// `[lo, hi]` cycles for `sigreturn`.
    pub sigreturn: (u64, u64),
    /// `[lo, hi]` cycles for other syscalls reached during exploration.
    pub other_syscall: (u64, u64),
    /// Where standard delivery resumes: the signal trampoline plus the
    /// registered signal handler. `None` stops standard paths at the host
    /// boundary.
    pub standard_resume: Option<StandardResume>,
}

/// Standard-path continuation: the host builds a sigcontext and restarts
/// user code in the trampoline with the handler in `$t9`.
#[derive(Clone, Copy, Debug)]
pub struct StandardResume {
    /// Trampoline entry address.
    pub trampoline_entry: u32,
    /// Registered signal-handler address (placed in `$t9`).
    pub handler: u32,
    /// Sigcontext offset of the saved PC (read back by `sigreturn`).
    pub sigctx_pc_off: i32,
}

/// Everything the explorer needs to know about the composed system that is
/// not in the images themselves.
#[derive(Clone, Debug)]
pub struct SymexConfig {
    /// General exception vector address.
    pub general_vector: u32,
    /// UTLB refill vector address, when the image has one.
    pub utlb_vector: Option<u32>,
    /// Hardware cycles from raise to first vector instruction.
    pub exception_entry_cycles: u64,
    /// Hardware cycles for user-level vectoring (the PC/UXT exchange).
    pub user_vector_entry_cycles: u64,
    /// The u-area model.
    pub uarea: UareaModel,
    /// The comm-page model.
    pub comm: CommModel,
    /// Registered guest handler entry, when registration metadata is
    /// available; `None` explores the kernel image alone.
    pub handler: Option<u32>,
    /// Registers the protocol obliges the kernel to save before vectoring.
    pub protocol_saved: Vec<Reg>,
    /// Documented recursive-exception-vulnerable windows, as half-open
    /// `[start, end)` address ranges.
    pub documented_windows: Vec<(u32, u32)>,
    /// Host-side cost intervals and continuation metadata.
    pub host: HostModel,
    /// Refill re-raises tolerated before declaring divergence.
    pub max_refills: u32,
    /// Per-path revisit bound per address (loop unrolling limit).
    pub unroll_limit: u32,
    /// Fork-explosion bound per scenario.
    pub max_paths: usize,
}

/// How the exception is raised and retried.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeliveryVariant {
    /// The mapping is present: the fault vectors directly.
    Direct,
    /// The TLB entry was evicted: UTLB refill first, then the retried
    /// access raises the real fault.
    Refill,
}

impl DeliveryVariant {
    /// Stable label used in scenario names.
    pub fn label(self) -> &'static str {
        match self {
            DeliveryVariant::Direct => "direct",
            DeliveryVariant::Refill => "refill",
        }
    }
}

/// Where the raise enters the system.
#[derive(Clone, Copy, Debug)]
pub enum EntryKind {
    /// Through the kernel's general (or UTLB) vector.
    KernelVector,
    /// Hardware user-level vectoring straight into the handler.
    UserVectored {
        /// Re-entry address (the instruction after the warm handler's
        /// `xpcu`).
        entry: u32,
    },
}

/// How deep to follow the path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Depth {
    /// Through the guest handler to the user resume.
    Deep,
    /// Stop when control would leave the kernel image (classes the
    /// composition never raises; their handler contract is untestable).
    KernelOnly,
}

/// One (class × variant) exploration request.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Scenario label for reports (e.g. `fast-user/breakpoint/direct`).
    pub label: String,
    /// The exception class raised.
    pub class: ExcCode,
    /// Direct or refill-then-retry delivery.
    pub variant: DeliveryVariant,
    /// Kernel vector or hardware user-level vectoring.
    pub entry: EntryKind,
    /// Deep (through the handler) or kernel-only.
    pub depth: Depth,
    /// Static cost of the faulting instruction (charged at raise and on
    /// retry).
    pub fault_cost: u64,
    /// Address whose first crossing ends the *deliver* span (the paper's
    /// t₁: handler entry).
    pub measure_to: Option<u32>,
    /// Address whose first crossing starts the *return* span (the paper's
    /// t₂: handler completion).
    pub measure_return_from: Option<u32>,
    /// Whether the resume's retried access may take a refill excursion
    /// (protection handlers invalidate the TLB entry when they amplify).
    pub return_may_refill: bool,
}

// ---------------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------------

/// How one explored path ended.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Terminal {
    /// Resumed user code at/after the faulting instruction.
    ResumeUser,
    /// Reached the registered handler boundary (kernel-only depth).
    ToHandler,
    /// Host completed delivery at the fast-TLB boundary (kernel-only
    /// depth).
    HostCompleted,
    /// Left for the standard Unix path with no modeled continuation.
    StandardPath,
    /// The program exited.
    Halt,
    /// Raised a nested exception from user mode (a `break` in the
    /// handler).
    NestedRaise,
    /// Abandoned after a finding (unresolved jump, divergence, …).
    Cut,
}

/// Per-scenario exploration outcome.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// Scenario label.
    pub label: String,
    /// Exception class explored.
    pub class: ExcCode,
    /// Delivery variant explored.
    pub variant: DeliveryVariant,
    /// Paths fully explored.
    pub paths: usize,
    /// Terminal census.
    pub terminals: BTreeMap<Terminal, usize>,
    /// `[min, max]` cycles raise → handler entry, over paths that crossed
    /// the deliver mark.
    pub deliver: Option<(u64, u64)>,
    /// `[min, max]` cycles handler completion → user resume.
    pub ret: Option<(u64, u64)>,
    /// Highest address at which CP0 exception state was still live on some
    /// path (end of the computed vulnerable window).
    pub live_window_end: Option<u32>,
    /// Whether any path reached a handler terminal.
    pub reached: bool,
}

/// The symbolic pass's report: findings plus per-scenario facts.
#[derive(Clone, Debug, Default)]
pub struct SymexReport {
    /// Deduplicated findings across all scenarios.
    pub findings: Vec<Finding>,
    /// Per-scenario outcomes in request order.
    pub scenarios: Vec<ScenarioOutcome>,
    /// Functions discovered by the static call graph.
    pub callgraph_functions: usize,
    /// Longest acyclic call chain.
    pub callgraph_depth: usize,
    /// Total paths explored.
    pub paths_explored: usize,
}

impl SymexReport {
    /// True when no finding was produced.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The outcome with the given label, if explored.
    pub fn scenario(&self, label: &str) -> Option<&ScenarioOutcome> {
        self.scenarios.iter().find(|s| s.label == label)
    }
}

// ---------------------------------------------------------------------------
// Path state
// ---------------------------------------------------------------------------

/// Where a resolved memory access lands.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Place {
    Comm(u32),
    Uarea(u32),
    Abs(u32),
    Rel(Token, i32),
    Unknown,
}

#[derive(Clone, Debug, Default)]
struct SymMem {
    comm: BTreeMap<u32, SymVal>,
    abs: BTreeMap<u32, SymVal>,
    rel: BTreeMap<(Token, i32), SymVal>,
    /// A store went to an unresolvable address: subsequent reads are
    /// unconstrained and undefined-read findings are suppressed.
    hazy: bool,
}

#[derive(Clone, Debug)]
struct Path {
    pc: u32,
    regs: [SymVal; 32],
    cp0: BTreeMap<u8, SymVal>,
    mem: SymMem,
    lo: u64,
    hi: u64,
    mode_user: bool,
    cur_class: ExcCode,
    /// EPC/Cause/BadVaddr saved-to-memory flags.
    saved_epc: bool,
    saved_cause: bool,
    saved_badvaddr: bool,
    /// Protocol registers saved to their comm slots (by guest or host).
    saved_regs: BTreeSet<Reg>,
    /// reg → (comm offset, load address) for values live from a comm load.
    restored_from: BTreeMap<Reg, (u32, u32)>,
    visits: BTreeMap<u32, u32>,
    call_stack: Vec<u32>,
    refills: u32,
    deliver_mark: Option<(u64, u64)>,
    ret_mark: Option<(u64, u64)>,
    /// Highest kernel-mode pc executed while CP0 state was live.
    live_end: Option<u32>,
}

impl Path {
    fn charge(&mut self, lo: u64, hi: u64) {
        self.lo += lo;
        self.hi += hi;
    }

    fn reg(&self, r: Reg) -> SymVal {
        if r == Reg::ZERO {
            SymVal::known(0)
        } else {
            self.regs[r.number() as usize]
        }
    }

    fn set_reg(&mut self, r: Reg, v: SymVal) {
        if r != Reg::ZERO {
            self.regs[r.number() as usize] = v;
            self.restored_from.remove(&r);
        }
    }

    fn cp0_live(&self) -> bool {
        !(self.saved_epc && self.saved_cause && self.saved_badvaddr)
    }
}

// ---------------------------------------------------------------------------
// The explorer
// ---------------------------------------------------------------------------

/// Runs the symbolic pass over `images` for every scenario, preceded by a
/// static call-graph sweep from the vector and handler roots.
pub fn explore(images: &Images<'_>, config: &SymexConfig, scenarios: &[Scenario]) -> SymexReport {
    let mut roots = vec![config.general_vector];
    if let Some(v) = config.utlb_vector {
        roots.push(v);
    }
    if let Some(h) = config.handler {
        roots.push(h);
    }
    let graph = CallGraph::build(images, &roots);
    let mut report = SymexReport {
        callgraph_functions: graph.functions.len(),
        callgraph_depth: graph.max_depth,
        ..SymexReport::default()
    };
    let mut findings = graph.recursion_findings(images);

    for scenario in scenarios {
        let mut engine = Engine {
            images,
            config,
            scenario,
            findings: Vec::new(),
            outcome: ScenarioOutcome {
                label: scenario.label.clone(),
                class: scenario.class,
                variant: scenario.variant,
                paths: 0,
                terminals: BTreeMap::new(),
                deliver: None,
                ret: None,
                live_window_end: None,
                reached: false,
            },
            work: Vec::new(),
        };
        engine.run();
        if !engine.outcome.reached {
            findings.push(images.finding(
                Lint::ClassUnreachable,
                config.general_vector,
                format!(
                    "exception class {:?} never reaches a handler terminal in scenario {}",
                    scenario.class, scenario.label
                ),
            ));
        }
        report.paths_explored += engine.outcome.paths;
        findings.append(&mut engine.findings);
        report.scenarios.push(engine.outcome);
    }

    // One finding per (address, lint) across the whole pass.
    let mut seen = BTreeSet::new();
    findings.retain(|f| seen.insert((f.addr, f.lint)));
    findings.sort_by_key(|f| f.addr);
    report.findings = findings;
    report
}

struct Engine<'a> {
    images: &'a Images<'a>,
    config: &'a SymexConfig,
    scenario: &'a Scenario,
    findings: Vec<Finding>,
    outcome: ScenarioOutcome,
    work: Vec<Path>,
}

enum Step {
    Continue,
    Terminal(Terminal),
}

impl<'a> Engine<'a> {
    fn run(&mut self) {
        let initial = self.initial_path();
        self.work.push(initial);
        while let Some(mut p) = self.work.pop() {
            if self.outcome.paths >= self.scenario_max_paths() {
                self.finding(
                    Lint::UnboundedPath,
                    p.pc,
                    format!(
                        "scenario {} exceeded {} explored paths; state space is not converging",
                        self.scenario.label,
                        self.scenario_max_paths()
                    ),
                );
                self.work.clear();
                break;
            }
            let terminal = loop {
                match self.step(&mut p) {
                    Step::Continue => continue,
                    Step::Terminal(t) => break t,
                }
            };
            self.outcome.paths += 1;
            *self.outcome.terminals.entry(terminal).or_insert(0) += 1;
            if matches!(
                terminal,
                Terminal::ResumeUser
                    | Terminal::ToHandler
                    | Terminal::HostCompleted
                    | Terminal::StandardPath
            ) {
                self.outcome.reached = true;
            }
            if let Some(end) = p.live_end {
                let cur = self.outcome.live_window_end.unwrap_or(0);
                self.outcome.live_window_end = Some(cur.max(end));
            }
            if let Some((dlo, dhi)) = p.deliver_mark {
                merge_span(&mut self.outcome.deliver, dlo, dhi);
            }
        }
    }

    fn scenario_max_paths(&self) -> usize {
        self.config.max_paths
    }

    fn initial_path(&self) -> Path {
        let mut regs = [SymVal::Top; 32];
        for r in Reg::all() {
            regs[r.number() as usize] = SymVal::tok(Token::Orig(r));
        }
        regs[0] = SymVal::known(0);
        let mut cp0 = BTreeMap::new();
        cp0.insert(Cp0Reg::Epc as u8, SymVal::tok(Token::Epc));
        cp0.insert(Cp0Reg::BadVaddr as u8, SymVal::tok(Token::BadVaddr));
        cp0.insert(Cp0Reg::Cause as u8, cause_bits(self.scenario.class));
        cp0.insert(Cp0Reg::Status as u8, status_bits());
        let mut p = Path {
            pc: 0,
            regs,
            cp0,
            mem: SymMem::default(),
            lo: 0,
            hi: 0,
            mode_user: false,
            cur_class: self.scenario.class,
            saved_epc: false,
            saved_cause: false,
            saved_badvaddr: false,
            saved_regs: BTreeSet::new(),
            restored_from: BTreeMap::new(),
            visits: BTreeMap::new(),
            call_stack: Vec::new(),
            refills: 0,
            deliver_mark: None,
            ret_mark: None,
            live_end: None,
        };
        p.charge(self.scenario.fault_cost, self.scenario.fault_cost);
        match self.scenario.entry {
            EntryKind::KernelVector => {
                let entry = self.config.exception_entry_cycles;
                p.charge(entry, entry);
                p.pc = match self.scenario.variant {
                    DeliveryVariant::Direct => self.config.general_vector,
                    DeliveryVariant::Refill => self
                        .config
                        .utlb_vector
                        .unwrap_or(self.config.general_vector),
                };
            }
            EntryKind::UserVectored { entry } => {
                let cost = self.config.user_vector_entry_cycles;
                p.charge(cost, cost);
                p.mode_user = true;
                // The hardware exchange leaves the faulting PC in UXT.
                p.cp0.insert(Cp0Reg::Uxt as u8, SymVal::tok(Token::Epc));
                // Hardware vectoring never exposes kernel CP0 state.
                p.saved_epc = true;
                p.saved_cause = true;
                p.saved_badvaddr = true;
                p.pc = entry;
            }
        }
        p
    }

    fn finding(&mut self, lint: Lint, addr: u32, message: impl Into<String>) {
        let message = format!("[{}] {}", self.scenario.label, message.into());
        self.findings.push(self.images.finding(lint, addr, message));
    }

    fn fetch(&mut self, _p: &Path, addr: u32) -> Option<Instruction> {
        match self.images.decode_at(addr) {
            Some(Some(inst)) => Some(inst),
            Some(None) => {
                self.finding(
                    Lint::Undecodable,
                    addr,
                    "symbolic execution reached a word that does not decode",
                );
                None
            }
            None => {
                self.finding(
                    Lint::RunsOffImage,
                    addr,
                    "symbolic execution ran past the end of every image",
                );
                None
            }
        }
    }

    /// Record measure-label crossings for the pc about to execute.
    fn cross(&mut self, p: &mut Path, pc: u32) {
        if Some(pc) == self.scenario.measure_to && p.deliver_mark.is_none() {
            p.deliver_mark = Some((p.lo, p.hi));
        }
        if Some(pc) == self.scenario.measure_return_from && p.ret_mark.is_none() {
            p.ret_mark = Some((p.lo, p.hi));
        }
    }

    fn step(&mut self, p: &mut Path) -> Step {
        let pc = p.pc;
        self.cross(p, pc);
        let visits = p.visits.entry(pc).or_insert(0);
        *visits += 1;
        if *visits > self.config.unroll_limit {
            self.finding(
                Lint::UnboundedPath,
                pc,
                format!(
                    "path revisits this instruction more than {} times; no static bound",
                    self.config.unroll_limit
                ),
            );
            return Step::Terminal(Terminal::Cut);
        }
        let Some(inst) = self.fetch(p, pc) else {
            return Step::Terminal(Terminal::Cut);
        };

        if inst.is_control_transfer() {
            return self.step_transfer(p, pc, inst);
        }

        let cost = static_cost(inst);
        p.charge(cost, cost);
        self.vulnerability_check(p, pc, inst);
        match inst {
            Instruction::Hcall { code } => self.host_call(p, pc, code),
            Instruction::Syscall { .. } => self.syscall(p, pc),
            Instruction::Break { .. } => {
                if p.mode_user {
                    Step::Terminal(Terminal::NestedRaise)
                } else {
                    // A kernel-mode break would re-enter the vector and
                    // destroy live state; the vulnerability check above
                    // reported it if outside a documented window.
                    Step::Terminal(Terminal::Cut)
                }
            }
            Instruction::Xpcu => {
                // Exchange PC with UXT: resume wherever UXT points.
                let target = p
                    .cp0
                    .get(&(Cp0Reg::Uxt as u8))
                    .copied()
                    .unwrap_or(SymVal::Top);
                self.resume_terminal(p, pc, target)
            }
            Instruction::Rfe => {
                // Outside a jr delay slot (the hazard lint flags misplaced
                // ones); pop the mode stack and continue.
                p.mode_user = true;
                p.pc = pc.wrapping_add(4);
                Step::Continue
            }
            _ => {
                self.exec_data(p, pc, inst);
                p.pc = pc.wrapping_add(4);
                Step::Continue
            }
        }
    }

    fn step_transfer(&mut self, p: &mut Path, pc: u32, inst: Instruction) -> Step {
        // Branch decisions and jump targets read pre-slot state.
        let decision = match inst {
            Instruction::Beq { rs, rt, .. } | Instruction::Bne { rs, rt, .. } => {
                if rs == rt {
                    sem::branch_taken(inst, 0, 0)
                } else {
                    branch_decision(inst, p.reg(rs), p.reg(rt))
                }
            }
            Instruction::Blez { rs, .. }
            | Instruction::Bgtz { rs, .. }
            | Instruction::Bltz { rs, .. }
            | Instruction::Bgez { rs, .. }
            | Instruction::Bltzal { rs, .. }
            | Instruction::Bgezal { rs, .. } => branch_decision(inst, p.reg(rs), SymVal::known(0)),
            _ => None,
        };
        let jr_target = match inst {
            Instruction::Jr { rs } | Instruction::Jalr { rs, .. } => Some(p.reg(rs)),
            _ => None,
        };

        // The delay slot executes before control transfers.
        let slot_pc = pc.wrapping_add(4);
        let Some(slot) = self.fetch(p, slot_pc) else {
            return Step::Terminal(Terminal::Cut);
        };
        if slot.is_control_transfer() {
            self.finding(
                Lint::BranchInDelaySlot,
                slot_pc,
                "control transfer in a delay slot; symbolic execution cannot continue",
            );
            return Step::Terminal(Terminal::Cut);
        }
        let cost = static_cost(inst) + static_cost(slot);
        p.charge(cost, cost);
        self.cross(p, slot_pc);
        self.vulnerability_check(p, pc, inst);
        self.vulnerability_check(p, slot_pc, slot);
        let slot_is_rfe = slot == Instruction::Rfe;
        if slot_is_rfe {
            p.mode_user = true;
        } else {
            self.exec_data(p, slot_pc, slot);
        }

        match inst {
            Instruction::J { target } => {
                p.pc = jump_target(pc, target);
                Step::Continue
            }
            Instruction::Jal { target } => {
                let ret = pc.wrapping_add(8);
                p.set_reg(Reg::RA, SymVal::known(ret));
                p.call_stack.push(ret);
                p.pc = jump_target(pc, target);
                Step::Continue
            }
            Instruction::Jalr { rd, rs: _ } => {
                let ret = pc.wrapping_add(8);
                p.set_reg(rd, SymVal::known(ret));
                match jr_target.unwrap_or(SymVal::Top).as_const() {
                    Some(t) => {
                        p.call_stack.push(ret);
                        p.pc = t;
                        Step::Continue
                    }
                    None => {
                        self.finding(
                            Lint::UnresolvedJump,
                            pc,
                            "indirect call target cannot be resolved symbolically",
                        );
                        Step::Terminal(Terminal::Cut)
                    }
                }
            }
            Instruction::Jr { .. } => {
                let target = jr_target.unwrap_or(SymVal::Top);
                if slot_is_rfe {
                    // The kernel's vector-to-user exit: check the save
                    // protocol, then continue into the handler (or stop at
                    // the boundary in kernel-only depth).
                    return self.vector_exit(p, pc, target);
                }
                match target {
                    SymVal::Sym(Token::Epc, _) => self.resume_terminal(p, pc, target),
                    SymVal::Sym(Token::Handler, 0) => {
                        self.outcome.reached = true;
                        Step::Terminal(Terminal::ToHandler)
                    }
                    _ => match target.as_const() {
                        Some(t) => {
                            if p.call_stack.last() == Some(&t) {
                                p.call_stack.pop();
                            }
                            p.pc = t;
                            Step::Continue
                        }
                        None => {
                            self.finding(
                                Lint::UnresolvedJump,
                                pc,
                                "jump-register target cannot be resolved symbolically",
                            );
                            Step::Terminal(Terminal::Cut)
                        }
                    },
                }
            }
            // Conditional branches.
            _ => {
                let taken_pc = match inst {
                    Instruction::Beq { imm, .. }
                    | Instruction::Bne { imm, .. }
                    | Instruction::Blez { imm, .. }
                    | Instruction::Bgtz { imm, .. }
                    | Instruction::Bltz { imm, .. }
                    | Instruction::Bgez { imm, .. }
                    | Instruction::Bltzal { imm, .. }
                    | Instruction::Bgezal { imm, .. } => branch_target(pc, imm),
                    _ => unreachable!("non-branch handled above"),
                };
                if matches!(
                    inst,
                    Instruction::Bltzal { .. } | Instruction::Bgezal { .. }
                ) {
                    p.set_reg(Reg::RA, SymVal::known(pc.wrapping_add(8)));
                }
                match decision {
                    Some(true) => {
                        p.pc = taken_pc;
                        Step::Continue
                    }
                    Some(false) => {
                        p.pc = pc.wrapping_add(8);
                        Step::Continue
                    }
                    None => {
                        let mut fork = p.clone();
                        fork.pc = taken_pc;
                        self.work.push(fork);
                        p.pc = pc.wrapping_add(8);
                        Step::Continue
                    }
                }
            }
        }
    }

    /// The `jr`-with-`rfe`-slot exit from kernel to user: enforce the save
    /// protocol, then continue into the registered handler.
    fn vector_exit(&mut self, p: &mut Path, pc: u32, target: SymVal) -> Step {
        for &r in &self.config.protocol_saved {
            if !p.saved_regs.contains(&r) {
                self.finding(
                    Lint::MissingSaveOnPath,
                    pc,
                    format!(
                        "path reaches the vector-to-user exit without saving ${} to its comm slot",
                        r.name()
                    ),
                );
            }
        }
        p.mode_user = true;
        match target {
            SymVal::Sym(Token::Handler, 0) => {
                self.outcome.reached = true;
                Step::Terminal(Terminal::ToHandler)
            }
            SymVal::Sym(Token::Epc, _) => self.resume_terminal(p, pc, target),
            _ => match target.as_const() {
                Some(t) => {
                    if self.scenario.depth == Depth::KernelOnly {
                        self.outcome.reached = true;
                        return Step::Terminal(Terminal::ToHandler);
                    }
                    p.pc = t;
                    Step::Continue
                }
                None => {
                    self.finding(
                        Lint::UnresolvedJump,
                        pc,
                        "vector-to-user exit target cannot be resolved symbolically",
                    );
                    Step::Terminal(Terminal::Cut)
                }
            },
        }
    }

    /// Terminal: user code resumes at/after the faulting instruction.
    /// Closes the return span and runs the restore-pairing checks.
    fn resume_terminal(&mut self, p: &mut Path, pc: u32, target: SymVal) -> Step {
        // Restore-slot agreement: any register whose live value came from a
        // comm-frame load must have been loaded from its own slot.
        let frame_base = self.scenario.class.code() * self.config.comm.frame_size;
        for (&r, &(off, load_addr)) in &p.restored_from {
            let rel = off.wrapping_sub(frame_base);
            let owner = self
                .config
                .comm
                .slot_owners
                .iter()
                .find(|&&(slot, _)| slot == rel)
                .map(|&(_, owner)| owner);
            match owner {
                Some(owner) if owner != r => {
                    self.finding(
                        Lint::WrongSlotRestore,
                        load_addr,
                        format!(
                            "${} is restored from the ${} slot (frame offset {:#x}) on a path to \
                             the user resume",
                            r.name(),
                            owner.name(),
                            rel
                        ),
                    );
                }
                None if rel >= self.config.comm.frame_size
                    && off < self.config.comm.page_len
                    && self
                        .config
                        .comm
                        .slot_owners
                        .iter()
                        .any(|&(slot, _)| slot == off % self.config.comm.frame_size) =>
                {
                    // A protocol slot, but in another class's frame.
                    self.finding(
                        Lint::WrongSlotRestore,
                        load_addr,
                        format!(
                            "${} is restored from another exception class's comm frame \
                             (page offset {:#x}, delivering class {:?})",
                            r.name(),
                            off,
                            self.scenario.class
                        ),
                    );
                }
                _ => {}
            }
        }

        // Close the return span.
        let resume_off = match target {
            SymVal::Sym(Token::Epc, off) => Some(off),
            _ => None,
        };
        let retry = resume_off == Some(0);
        if retry || resume_off.is_none() {
            // Resuming at the faulting instruction re-executes it.
            let c = self.scenario.fault_cost;
            if retry {
                p.charge(c, c);
            } else {
                p.charge(0, c);
            }
            if self.scenario.return_may_refill {
                // The handler invalidated the TLB entry: the retry may miss,
                // refill, and try again.
                let excursion = self.scenario.fault_cost
                    + self.config.exception_entry_cycles
                    + 1
                    + self.config.host.refill_cycles;
                p.charge(0, excursion);
            }
        }
        let _ = pc;
        if let Some((rlo, rhi)) = p.ret_mark {
            merge_span(&mut self.outcome.ret, p.lo - rlo, p.hi - rhi);
        }
        Step::Terminal(Terminal::ResumeUser)
    }

    /// Models the three host calls of the delivery protocol.
    fn host_call(&mut self, p: &mut Path, pc: u32, code: u32) -> Step {
        match code {
            // UTLB refill: install the mapping, retry, re-raise the real
            // fault through the general vector.
            0 => {
                p.refills += 1;
                if p.refills > self.config.max_refills {
                    self.finding(
                        Lint::RefillDivergence,
                        pc,
                        format!(
                            "UTLB refill re-raised more than {} times; the refill loop does not \
                             terminate",
                            self.config.max_refills
                        ),
                    );
                    return Step::Terminal(Terminal::Cut);
                }
                let refill = self.config.host.refill_cycles;
                let reraise = self.scenario.fault_cost + self.config.exception_entry_cycles;
                p.charge(refill + reraise, refill + reraise);
                // Fresh exception: CP0 state is live again.
                p.saved_epc = false;
                p.saved_cause = false;
                p.saved_badvaddr = false;
                p.cp0.insert(Cp0Reg::Epc as u8, SymVal::tok(Token::Epc));
                p.cp0
                    .insert(Cp0Reg::BadVaddr as u8, SymVal::tok(Token::BadVaddr));
                p.cp0.insert(Cp0Reg::Cause as u8, cause_bits(p.cur_class));
                p.mode_user = false;
                p.pc = self.config.general_vector;
                Step::Continue
            }
            // Standard path: Unix signal delivery or syscall dispatch.
            1 => {
                if p.cur_class == ExcCode::Syscall {
                    return self.host_syscall(p, pc);
                }
                let (mut lo, mut hi) = self.config.host.standard;
                if p.cur_class.is_tlb() {
                    lo += self.config.host.standard_tlb_extra;
                    hi += self.config.host.standard_tlb_extra;
                }
                p.charge(lo, hi);
                p.saved_epc = true;
                p.saved_cause = true;
                p.saved_badvaddr = true;
                let resume = match (self.scenario.depth, self.config.host.standard_resume) {
                    (Depth::Deep, Some(r)) => r,
                    _ => {
                        self.outcome.reached = true;
                        return Step::Terminal(Terminal::StandardPath);
                    }
                };
                // The host saves the full register file into the
                // sigcontext, then redirects into the trampoline.
                for r in Reg::all() {
                    p.mem
                        .rel
                        .insert((Token::SigCtx, 4 * r.number() as i32), p.reg(r));
                }
                let epc = p
                    .cp0
                    .get(&(Cp0Reg::Epc as u8))
                    .copied()
                    .unwrap_or(SymVal::Top);
                p.mem.rel.insert((Token::SigCtx, resume.sigctx_pc_off), epc);
                p.set_reg(Reg::A0, SymVal::Top); // signal number
                p.set_reg(Reg::A1, SymVal::known(p.cur_class.code()));
                p.set_reg(Reg::A2, SymVal::tok(Token::SigCtx));
                p.set_reg(Reg::T9, SymVal::known(resume.handler));
                p.set_reg(Reg::SP, SymVal::Sym(Token::SigCtx, -24));
                p.mode_user = true;
                p.pc = resume.trampoline_entry;
                Step::Continue
            }
            // Fast TLB exception: host page-table work, comm-frame
            // writeback, resume in the registered handler.
            2 => {
                let (lo, hi) = self.config.host.fast_tlb;
                p.charge(lo, hi);
                let frame = p.cur_class.code() * self.config.comm.frame_size;
                let epc = p
                    .cp0
                    .get(&(Cp0Reg::Epc as u8))
                    .copied()
                    .unwrap_or(SymVal::Top);
                let cause_v = p
                    .cp0
                    .get(&(Cp0Reg::Cause as u8))
                    .copied()
                    .unwrap_or(SymVal::Top);
                let badv = p
                    .cp0
                    .get(&(Cp0Reg::BadVaddr as u8))
                    .copied()
                    .unwrap_or(SymVal::Top);
                // write_comm_frame: EPC, Cause, BadVaddr, then the *current*
                // $at/$a0/$a1 into the protocol slots, then ACTIVE.
                let writes: [(u32, SymVal); 7] = [
                    (0x0, epc),
                    (0x4, cause_v),
                    (0x8, badv),
                    (0xc, p.reg(Reg::AT)),
                    (0x10, p.reg(Reg::A0)),
                    (0x14, p.reg(Reg::A1)),
                    (0x18, SymVal::known(1)),
                ];
                for (off, v) in writes {
                    p.mem.comm.insert(frame + off, v);
                }
                for &(_, r) in &self.config.comm.slot_owners {
                    p.saved_regs.insert(r);
                }
                p.saved_epc = true;
                p.saved_cause = true;
                p.saved_badvaddr = true;
                match (self.scenario.depth, self.config.handler) {
                    (Depth::Deep, Some(h)) => {
                        p.mode_user = true;
                        p.pc = h;
                        Step::Continue
                    }
                    _ => {
                        self.outcome.reached = true;
                        Step::Terminal(Terminal::HostCompleted)
                    }
                }
            }
            _ => {
                self.finding(
                    Lint::UnresolvedJump,
                    pc,
                    format!("hcall {code} is not part of the delivery protocol"),
                );
                Step::Terminal(Terminal::Cut)
            }
        }
    }

    /// A `syscall` in user mode raises through the general vector like any
    /// other exception; the host dispatch happens at the fallback hcall.
    fn syscall(&mut self, p: &mut Path, pc: u32) -> Step {
        if !p.mode_user {
            // The kernel image itself contains no syscalls; treat as a
            // nested raise that destroys live state (reported by the
            // vulnerability check).
            return Step::Terminal(Terminal::Cut);
        }
        let entry = self.config.exception_entry_cycles;
        p.charge(entry, entry);
        p.cur_class = ExcCode::Syscall;
        p.cp0.insert(Cp0Reg::Epc as u8, SymVal::known(pc));
        p.cp0
            .insert(Cp0Reg::Cause as u8, cause_bits(ExcCode::Syscall));
        p.cp0.insert(Cp0Reg::Status as u8, status_bits());
        p.saved_epc = false;
        p.saved_cause = false;
        p.saved_badvaddr = true; // syscalls have no bad address
        p.mode_user = false;
        p.pc = self.config.general_vector;
        Step::Continue
    }

    /// Host syscall dispatch at the fallback hcall (class == Syscall).
    fn host_syscall(&mut self, p: &mut Path, pc: u32) -> Step {
        let epc = p
            .cp0
            .get(&(Cp0Reg::Epc as u8))
            .copied()
            .unwrap_or(SymVal::Top);
        match p.reg(Reg::V0).as_const() {
            Some(2) => Step::Terminal(Terminal::Halt), // SYS_exit
            Some(5) => {
                // SYS_sigreturn: restore from the sigcontext and resume at
                // its saved PC (which the handler may have advanced).
                let (lo, hi) = self.config.host.sigreturn;
                p.charge(lo, hi);
                let sc = p.reg(Reg::A0);
                let target = match sc {
                    SymVal::Sym(Token::SigCtx, base) => {
                        let off = self
                            .config
                            .host
                            .standard_resume
                            .map(|r| r.sigctx_pc_off)
                            .unwrap_or(136);
                        p.mem
                            .rel
                            .get(&(Token::SigCtx, base + off))
                            .copied()
                            .unwrap_or(SymVal::Top)
                    }
                    _ => SymVal::Top,
                };
                self.resume_terminal(p, pc, target)
            }
            _ => {
                // Any other syscall: charge the host interval and resume
                // after the syscall instruction.
                let (lo, hi) = self.config.host.other_syscall;
                p.charge(lo, hi);
                match epc {
                    SymVal::Bits { .. } if epc.as_const().is_some() => {
                        p.set_reg(Reg::V0, SymVal::Top);
                        p.set_reg(Reg::A3, SymVal::Top);
                        p.mode_user = true;
                        p.pc = epc.as_const().unwrap().wrapping_add(4);
                        Step::Continue
                    }
                    _ => {
                        self.outcome.reached = true;
                        Step::Terminal(Terminal::StandardPath)
                    }
                }
            }
        }
    }

    /// Non-control, non-system instruction effects.
    fn exec_data(&mut self, p: &mut Path, pc: u32, inst: Instruction) {
        use Instruction::*;
        match inst {
            Mfc0 { rt, rd } => {
                let v = match Cp0Reg::from_number(rd) {
                    Some(Cp0Reg::Prid) => SymVal::known(0x0000_0230),
                    Some(_) => p.cp0.get(&rd).copied().unwrap_or(SymVal::Top),
                    None => SymVal::known(0),
                };
                p.set_reg(rt, v);
            }
            Mtc0 { rt, rd } => {
                let v = p.reg(rt);
                p.cp0.insert(rd, v);
            }
            Tlbr | Tlbwi | Tlbwr | Tlbp | Utlbp { .. } => {}
            Mfhi { rd } | Mflo { rd } => p.set_reg(rd, SymVal::Top),
            Mthi { .. } | Mtlo { .. } | Mult { .. } | Multu { .. } | Div { .. } | Divu { .. } => {}
            Lb { rt, base, imm }
            | Lh { rt, base, imm }
            | Lw { rt, base, imm }
            | Lbu { rt, base, imm }
            | Lhu { rt, base, imm } => {
                let addr = eval_alu(
                    Addiu {
                        rt: Reg::ZERO,
                        rs: Reg::ZERO,
                        imm,
                    },
                    p.reg(base),
                    SymVal::known(0),
                );
                let place = self.resolve(addr);
                let word = matches!(inst, Lw { .. });
                let v = self.load(p, pc, place, word);
                p.set_reg(rt, v);
                if word {
                    if let Place::Comm(off) = place {
                        p.restored_from.insert(rt, (off & !3, pc));
                    }
                }
            }
            Sb { rt, base, imm } | Sh { rt, base, imm } | Sw { rt, base, imm } => {
                let addr = eval_alu(
                    Addiu {
                        rt: Reg::ZERO,
                        rs: Reg::ZERO,
                        imm,
                    },
                    p.reg(base),
                    SymVal::known(0),
                );
                let place = self.resolve(addr);
                let word = matches!(inst, Sw { .. });
                let v = if word { p.reg(rt) } else { SymVal::Top };
                self.store(p, pc, place, v);
            }
            Lui { rt, imm } => p.set_reg(rt, SymVal::known((imm as u32) << 16)),
            // Three-operand / immediate ALU.
            Sll { rd, rt, .. } | Srl { rd, rt, .. } | Sra { rd, rt, .. } => {
                let v = eval_alu(inst, SymVal::known(0), p.reg(rt));
                p.set_reg(rd, v);
            }
            Sllv { rd, rt, rs } | Srlv { rd, rt, rs } | Srav { rd, rt, rs } => {
                let v = eval_alu(inst, p.reg(rs), p.reg(rt));
                p.set_reg(rd, v);
            }
            Add { rd, rs, rt }
            | Addu { rd, rs, rt }
            | Sub { rd, rs, rt }
            | Subu { rd, rs, rt }
            | And { rd, rs, rt }
            | Or { rd, rs, rt }
            | Xor { rd, rs, rt }
            | Nor { rd, rs, rt }
            | Slt { rd, rs, rt }
            | Sltu { rd, rs, rt } => {
                let v = eval_alu(inst, p.reg(rs), p.reg(rt));
                p.set_reg(rd, v);
            }
            Addi { rt, rs, .. }
            | Addiu { rt, rs, .. }
            | Slti { rt, rs, .. }
            | Sltiu { rt, rs, .. }
            | Andi { rt, rs, .. }
            | Ori { rt, rs, .. }
            | Xori { rt, rs, .. } => {
                let v = eval_alu(inst, p.reg(rs), SymVal::known(0));
                p.set_reg(rt, v);
            }
            _ => {}
        }
    }

    fn resolve(&self, addr: SymVal) -> Place {
        let comm = &self.config.comm;
        if let Some(a) = addr.as_const() {
            if a.wrapping_sub(comm.user_base) < comm.page_len {
                return Place::Comm(a - comm.user_base);
            }
            if let Some(k) = comm.kseg0_base {
                if a.wrapping_sub(k) < comm.page_len {
                    return Place::Comm(a - k);
                }
            }
            let ua = &self.config.uarea;
            if a.wrapping_sub(ua.base) < ua.len {
                return Place::Uarea(a - ua.base);
            }
            return Place::Abs(a);
        }
        match addr {
            SymVal::Sym(Token::CommBase, off) => {
                if off >= 0 && (off as u32) < comm.page_len {
                    Place::Comm(off as u32)
                } else {
                    Place::Unknown
                }
            }
            SymVal::Sym(t, off) => Place::Rel(t, off),
            _ => Place::Unknown,
        }
    }

    fn load(&mut self, p: &mut Path, pc: u32, place: Place, word: bool) -> SymVal {
        match place {
            Place::Comm(off) => {
                let off = off & !3;
                match p.mem.comm.get(&off).copied() {
                    Some(v) if word => v,
                    Some(_) => SymVal::Top,
                    None => {
                        if !p.mem.hazy {
                            self.finding(
                                Lint::UndefinedCommRead,
                                pc,
                                format!(
                                    "reads comm-page word at page offset {off:#x} that no \
                                     instruction defined during this delivery"
                                ),
                            );
                        }
                        SymVal::Top
                    }
                }
            }
            Place::Uarea(off) => {
                let abs_addr = self.config.uarea.base + off;
                if let Some(v) = p.mem.abs.get(&abs_addr) {
                    return *v;
                }
                match self.config.uarea.words.get(&(off & !3)) {
                    Some(UareaWord::Known(v)) if word => SymVal::known(*v),
                    Some(UareaWord::CommBase) => match self.config.comm.kseg0_base {
                        Some(k) => SymVal::known(k),
                        None => SymVal::tok(Token::CommBase),
                    },
                    Some(UareaWord::Handler) => match self.config.handler {
                        Some(h) => SymVal::known(h),
                        None => SymVal::tok(Token::Handler),
                    },
                    _ => SymVal::Top,
                }
            }
            Place::Abs(a) => {
                if p.mem.hazy {
                    SymVal::Top
                } else {
                    p.mem.abs.get(&(a & !3)).copied().unwrap_or(SymVal::Top)
                }
            }
            Place::Rel(t, off) => {
                if word {
                    p.mem.rel.get(&(t, off)).copied().unwrap_or(SymVal::Top)
                } else {
                    SymVal::Top
                }
            }
            Place::Unknown => SymVal::Top,
        }
    }

    fn store(&mut self, p: &mut Path, pc: u32, place: Place, v: SymVal) {
        // State-saving recognition: a store of the EPC/Cause/BadVaddr value
        // anywhere closes the corresponding live window.
        match v {
            SymVal::Sym(Token::Epc, _) => p.saved_epc = true,
            SymVal::Sym(Token::Cause, _) => p.saved_cause = true,
            SymVal::Sym(Token::BadVaddr, _) => p.saved_badvaddr = true,
            // Cause folds to a Bits value; recognize it structurally.
            SymVal::Bits { .. } if v == cause_bits(p.cur_class) => p.saved_cause = true,
            _ => {}
        }
        match place {
            Place::Comm(off) => {
                let off = off & !3;
                p.mem.comm.insert(off, v);
                // Protocol-save recognition and slot agreement.
                if let SymVal::Sym(Token::Orig(r), 0) = v {
                    if self.config.protocol_saved.contains(&r) {
                        p.saved_regs.insert(r);
                        let frame_base = p.cur_class.code() * self.config.comm.frame_size;
                        let rel = off.wrapping_sub(frame_base);
                        if let Some(&(canon, _)) = self
                            .config
                            .comm
                            .slot_owners
                            .iter()
                            .find(|&&(_, owner)| owner == r)
                        {
                            if rel != canon {
                                self.finding(
                                    Lint::WrongSlotSave,
                                    pc,
                                    format!(
                                        "${} is saved to frame offset {rel:#x}; its canonical \
                                         slot is {canon:#x}",
                                        r.name()
                                    ),
                                );
                            }
                        }
                    }
                }
            }
            Place::Uarea(off) => {
                p.mem.abs.insert(self.config.uarea.base + (off & !3), v);
            }
            Place::Abs(a) => {
                p.mem.abs.insert(a & !3, v);
            }
            Place::Rel(t, off) => {
                p.mem.rel.insert((t, off), v);
            }
            Place::Unknown => {
                p.mem.hazy = true;
            }
        }
    }

    /// While CP0 exception state is live in kernel mode, any instruction
    /// that can itself fault would destroy it. The documented windows are
    /// allowed; everything else is a finding.
    fn vulnerability_check(&mut self, p: &mut Path, pc: u32, inst: Instruction) {
        if p.mode_user || !p.cp0_live() {
            return;
        }
        p.live_end = Some(p.live_end.map_or(pc, |e| e.max(pc)));
        let faultable = self.can_fault(p, inst);
        if !faultable {
            return;
        }
        let documented = self
            .config
            .documented_windows
            .iter()
            .any(|&(s, e)| pc >= s && pc < e);
        if !documented {
            self.finding(
                Lint::VulnerableWindow,
                pc,
                "faultable instruction outside the documented window while EPC/Cause/BadVaddr \
                 are live in CP0",
            );
        }
    }

    fn can_fault(&self, p: &Path, inst: Instruction) -> bool {
        use Instruction::*;
        match inst {
            Add { rs, rt, .. } | Sub { rs, rt, .. } => {
                match (p.reg(rs).as_const(), p.reg(rt).as_const()) {
                    (Some(a), Some(b)) => sem::alu_overflows(inst, a, b),
                    _ => true,
                }
            }
            Addi { rs, .. } => match p.reg(rs).as_const() {
                Some(a) => sem::alu_overflows(inst, a, 0),
                None => true,
            },
            Syscall { .. } | Break { .. } => true,
            _ if inst.is_memory_access() => {
                let (base, imm) = match inst {
                    Lb { base, imm, .. }
                    | Lh { base, imm, .. }
                    | Lw { base, imm, .. }
                    | Lbu { base, imm, .. }
                    | Lhu { base, imm, .. }
                    | Sb { base, imm, .. }
                    | Sh { base, imm, .. }
                    | Sw { base, imm, .. } => (base, imm),
                    _ => return true,
                };
                let addr = eval_alu(
                    Addiu {
                        rt: Reg::ZERO,
                        rs: Reg::ZERO,
                        imm,
                    },
                    p.reg(base),
                    SymVal::known(0),
                );
                match self.resolve(addr) {
                    // The comm page is pinned; the u-area and the kseg0
                    // segment are unmapped kernel space.
                    Place::Comm(_) | Place::Uarea(_) => false,
                    Place::Abs(a) => !(0x8000_0000..0xa000_0000).contains(&a),
                    Place::Rel(_, _) | Place::Unknown => true,
                }
            }
            _ => false,
        }
    }
}

fn merge_span(span: &mut Option<(u64, u64)>, lo: u64, hi: u64) {
    *span = Some(match *span {
        None => (lo, hi),
        Some((l, h)) => (l.min(lo), h.max(hi)),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_ops_track_known_bits() {
        // Cause for Breakpoint: code 9 in bits 2..=6.
        let c = cause_bits(ExcCode::Breakpoint);
        // srl 2 then andi 0x1f must fold to the code.
        let shifted = bits_binop(
            Instruction::Srl {
                rd: Reg::T0,
                rt: Reg::T0,
                shamt: 2,
            },
            SymVal::Top,
            c,
        );
        let code = bits_binop(
            Instruction::Andi {
                rt: Reg::T0,
                rs: Reg::T0,
                imm: 0x1f,
            },
            shifted,
            SymVal::known(0),
        );
        assert_eq!(code.as_const(), Some(9));
        // The branch-delay bit (bit 31) must stay unknown through a
        // `srl 31`: the canary handler's BD-branch has to fork.
        let bd = bits_binop(
            Instruction::Srl {
                rd: Reg::T0,
                rt: Reg::T0,
                shamt: 31,
            },
            SymVal::Top,
            c,
        );
        assert_eq!(bd.as_const(), None);
        match bd {
            SymVal::Bits { mask, .. } => assert_eq!(mask & 1, 0, "BD bit wrongly known"),
            other => panic!("expected Bits, got {other:?}"),
        }
    }

    #[test]
    fn status_kup_test_folds() {
        let s = status_bits();
        let v = bits_binop(
            Instruction::Andi {
                rt: Reg::T0,
                rs: Reg::T0,
                imm: 8,
            },
            s,
            SymVal::known(0),
        );
        assert_eq!(v.as_const(), Some(8));
    }

    #[test]
    fn token_offset_arithmetic() {
        let sp = SymVal::tok(Token::Orig(Reg::SP));
        let moved = eval_alu(
            Instruction::Addiu {
                rt: Reg::SP,
                rs: Reg::SP,
                imm: -80,
            },
            sp,
            SymVal::known(0),
        );
        assert_eq!(moved, SymVal::Sym(Token::Orig(Reg::SP), -80));
        let back = eval_alu(
            Instruction::Addiu {
                rt: Reg::SP,
                rs: Reg::SP,
                imm: 80,
            },
            moved,
            SymVal::known(0),
        );
        assert_eq!(back, SymVal::Sym(Token::Orig(Reg::SP), 0));
    }

    #[test]
    fn branch_decisions_on_partial_bits() {
        // beqz on a value with a known set bit is never taken.
        let v = SymVal::Bits { val: 8, mask: 8 };
        let d = branch_decision(
            Instruction::Beq {
                rs: Reg::T0,
                rt: Reg::ZERO,
                imm: 1,
            },
            v,
            SymVal::known(0),
        );
        assert_eq!(d, Some(false));
        // beqz on a fully unknown value forks.
        let d = branch_decision(
            Instruction::Beq {
                rs: Reg::T0,
                rt: Reg::ZERO,
                imm: 1,
            },
            SymVal::Top,
            SymVal::known(0),
        );
        assert_eq!(d, None);
    }
}
