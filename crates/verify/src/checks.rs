//! The analysis passes: hazard lints, memory-reference proof, save-set
//! liveness, and static path bounds.

use std::collections::{BTreeMap, BTreeSet};

use efex_mips::asm::Program;
use efex_mips::isa::{Instruction, Reg};

use crate::absint::{effective_address, AbsVal, RegState};
use crate::cfg::Cfg;
use crate::defuse;
use crate::diag::{static_cost, Finding, Lint, PathBounds, PhaseBound, Report};
use crate::VerifyConfig;

/// Delay-slot and critical-path hazard lints.
pub fn hazards(prog: &Program, config: &VerifyConfig, graph: &Cfg, report: &mut Report) {
    for (addr, node) in graph.iter() {
        if let Some(owner) = node.delay_of {
            if node.inst.is_control_transfer() {
                report.findings.push(Finding::new(
                    prog,
                    Lint::BranchInDelaySlot,
                    addr,
                    format!(
                        "control transfer in the delay slot of the transfer at {owner:#010x}: \
                         behavior is architecturally undefined"
                    ),
                ));
            }
            if let Some(dest) = defuse::load_dest(node.inst) {
                for &succ in &node.succs {
                    let Some(target) = graph.node(succ) else {
                        continue;
                    };
                    if defuse::reads(target.inst).contains(&dest) {
                        report.findings.push(Finding::new(
                            prog,
                            Lint::LoadUseInDelaySlot,
                            addr,
                            format!(
                                "load into {dest} in a delay slot; the first instruction at \
                                 {succ:#010x} reads {dest} before the load delay expires"
                            ),
                        ));
                        break;
                    }
                }
            }
        }
        if node.inst == Instruction::Rfe {
            let returning = node
                .delay_of
                .and_then(|o| graph.node(o))
                .is_some_and(|o| matches!(o.inst, Instruction::Jr { .. }));
            if !returning {
                report.findings.push(Finding::new(
                    prog,
                    Lint::MisplacedRfe,
                    addr,
                    "rfe outside the delay slot of its return jump: the status pop and the \
                     PC redirect would not commit together",
                ));
            }
        }
        if let Some(critical_until) = config.critical_until {
            let critical = addr >= config.entry && addr < critical_until;
            let trapping = matches!(
                node.inst,
                Instruction::Add { .. } | Instruction::Addi { .. } | Instruction::Sub { .. }
            );
            if critical && trapping {
                report.findings.push(Finding::new(
                    prog,
                    Lint::TrappingArithOnCriticalPath,
                    addr,
                    "overflow-trapping arithmetic before the exception state is saved: a trap \
                     here would destroy the live EPC/cause (use the unsigned form)",
                ));
            }
        }
    }
}

/// Proves every reachable load/store lands aligned inside a pinned region.
pub fn mem_refs(
    prog: &Program,
    config: &VerifyConfig,
    graph: &Cfg,
    states: &BTreeMap<u32, RegState>,
    report: &mut Report,
) {
    for (addr, node) in graph.iter() {
        let Some((base, imm)) = defuse::access_addr(node.inst) else {
            continue;
        };
        let width = defuse::access_width(node.inst).unwrap_or(4);
        let ea = states
            .get(&addr)
            .map(|s| effective_address(s.reg(base), imm))
            .unwrap_or(AbsVal::Unknown);
        let proven = match ea {
            AbsVal::Const(a) => {
                a.is_multiple_of(width)
                    && config.pinned.iter().any(|r| match r.base {
                        Some(b) => a >= b && a.wrapping_sub(b).saturating_add(width) <= r.len,
                        None => false,
                    })
            }
            AbsVal::Ptr {
                region,
                lo,
                hi,
                align,
            } => {
                let len = config.pinned[region].len;
                hi.saturating_add(width) <= len
                    && lo.is_multiple_of(width)
                    && (align == 0 || align.is_multiple_of(width))
            }
            _ => false,
        };
        if !proven {
            report.findings.push(Finding::new(
                prog,
                Lint::UnpinnedMemoryReference,
                addr,
                format!(
                    "cannot prove this {}-byte access stays aligned inside a pinned region \
                     (abstract address: {ea:?})",
                    width
                ),
            ));
        }
    }
}

/// Save-set liveness: clobbers vs. the communication-frame protocol.
pub fn save_set(
    prog: &Program,
    config: &VerifyConfig,
    graph: &Cfg,
    states: &BTreeMap<u32, RegState>,
    report: &mut Report,
) {
    // Clobbers, with the first write site of each register.
    let mut clobbered: BTreeMap<Reg, u32> = BTreeMap::new();
    for (addr, node) in graph.iter() {
        if let Some(w) = defuse::writes(node.inst) {
            clobbered.entry(w).or_insert(addr);
        }
    }

    // Saves: stores into the save region of registers that still hold
    // their handler-entry value (`sw $a0, 0($k1)` *after* `mfc0 $a0, $epc`
    // is a data store, not a save).
    let mut saved: BTreeMap<Reg, u32> = BTreeMap::new();
    if let Some(save_region) = config.save_region {
        for (addr, node) in graph.iter() {
            let Instruction::Sw { rt, base, imm } = node.inst else {
                continue;
            };
            let Some(state) = states.get(&addr) else {
                continue;
            };
            if !state.is_orig(rt) || rt == Reg::ZERO {
                continue;
            }
            let in_frame = match effective_address(state.reg(base), imm) {
                AbsVal::Ptr { region, .. } => region == save_region,
                AbsVal::Const(a) => match config.pinned[save_region].base {
                    Some(b) => a >= b && a - b < config.pinned[save_region].len,
                    None => false,
                },
                _ => false,
            };
            if in_frame {
                saved.entry(rt).or_insert(addr);
            }
        }
    }

    // Per-phase clobber sets (phase = [label, next label or `end`)).
    for (i, (label, start)) in config.phases.iter().enumerate() {
        let end = config
            .phases
            .get(i + 1)
            .map(|(_, a)| *a)
            .or(config.end)
            .unwrap_or(u32::MAX);
        let mut regs: BTreeSet<Reg> = BTreeSet::new();
        for (addr, node) in graph.iter() {
            if addr >= *start && addr < end {
                if let Some(w) = defuse::writes(node.inst) {
                    regs.insert(w);
                }
            }
        }
        report
            .phase_clobbers
            .push((label.clone(), regs.into_iter().collect()));
    }

    for (&reg, &site) in &clobbered {
        if config.reserved.contains(&reg) || saved.contains_key(&reg) {
            continue;
        }
        report.findings.push(Finding::new(
            prog,
            Lint::UnsavedClobber,
            site,
            format!(
                "{reg} is clobbered but never saved to the communication frame, and it is \
                 not kernel-reserved: user state is silently destroyed"
            ),
        ));
    }
    for (&reg, &site) in &saved {
        if clobbered.contains_key(&reg) || config.protocol_saved.contains(&reg) {
            continue;
        }
        report.findings.push(Finding::new(
            prog,
            Lint::DeadSave,
            site,
            format!(
                "{reg} is saved to the communication frame but neither clobbered by the \
                 handler nor promised to the user as scratch: dead store on every exception"
            ),
        ));
    }
    for &reg in &config.protocol_saved {
        if saved.contains_key(&reg) {
            continue;
        }
        report.findings.push(Finding::new(
            prog,
            Lint::MissingProtocolSave,
            config.entry,
            format!(
                "the protocol promises {reg} to the user handler as scratch, but no save of \
                 its original value exists"
            ),
        ));
    }
}

struct PathWalk<'a> {
    graph: &'a Cfg,
    on_path: BTreeSet<u32>,
    path: Vec<u32>,
    complete: Vec<(Vec<u32>, bool)>,
    cycles: BTreeSet<u32>,
    capped: bool,
}

/// More complete paths than any real handler has; hitting this means the
/// code under analysis is not a handler, so stop enumerating.
const MAX_PATHS: usize = 4096;

impl PathWalk<'_> {
    fn dfs(&mut self, addr: u32) {
        if self.complete.len() >= MAX_PATHS {
            self.capped = true;
            return;
        }
        if self.on_path.contains(&addr) {
            self.cycles.insert(addr);
            return;
        }
        let Some(node) = self.graph.node(addr) else {
            // Off-image edges already produced a RunsOffImage finding; the
            // partial path still bounds real work, record it as complete.
            self.complete.push((self.path.clone(), false));
            return;
        };
        self.on_path.insert(addr);
        self.path.push(addr);
        if node.succs.is_empty() {
            self.complete
                .push((self.path.clone(), self.graph.is_vector_exit(addr)));
        } else {
            for &succ in &node.succs {
                self.dfs(succ);
            }
        }
        self.path.pop();
        self.on_path.remove(&addr);
    }
}

/// Enumerates every path from the entry, asserting a static instruction
/// bound exists and the fast path fits the configured budget.
pub fn bounds(prog: &Program, config: &VerifyConfig, graph: &Cfg, report: &mut Report) {
    let mut walk = PathWalk {
        graph,
        on_path: BTreeSet::new(),
        path: Vec::new(),
        complete: Vec::new(),
        cycles: BTreeSet::new(),
        capped: false,
    };
    walk.dfs(config.entry);

    for &addr in &walk.cycles {
        report.findings.push(Finding::new(
            prog,
            Lint::UnboundedPath,
            addr,
            "a path through the handler revisits this instruction: no static instruction \
             bound exists",
        ));
    }
    if walk.capped {
        report.findings.push(Finding::new(
            prog,
            Lint::UnboundedPath,
            config.entry,
            format!("more than {MAX_PATHS} distinct paths: not statically boundable"),
        ));
    }

    // The fast path is the longest path that exits straight to user mode
    // (jr with rfe in its delay slot).
    let fast = walk
        .complete
        .iter()
        .filter(|(_, vector)| *vector)
        .max_by_key(|(path, _)| path.len());
    if let Some((path, _)) = fast {
        let mut per_phase: Vec<PhaseBound> = config
            .phases
            .iter()
            .map(|(label, _)| PhaseBound {
                label: label.clone(),
                instructions: 0,
                cycles: 0,
            })
            .collect();
        let end = config.end.unwrap_or(u32::MAX);
        let mut total_cycles = 0u64;
        for &addr in path {
            let inst = graph.node(addr).expect("path node exists").inst;
            let cost = static_cost(inst);
            total_cycles += cost;
            if addr >= end {
                continue;
            }
            let phase = config
                .phases
                .iter()
                .enumerate()
                .rev()
                .find(|(_, (_, start))| addr >= *start)
                .map(|(i, _)| i);
            if let Some(i) = phase {
                per_phase[i].instructions += 1;
                per_phase[i].cycles += cost;
            }
        }
        report.fast_path = Some(PathBounds {
            per_phase,
            total_instructions: path.len() as u64,
            total_cycles,
        });
    }

    if let Some(budget) = config.instruction_budget {
        let longest = walk
            .complete
            .iter()
            .filter(|(_, vector)| *vector)
            .map(|(path, _)| path.len() as u64)
            .max();
        if let Some(longest) = longest {
            if longest > budget {
                report.findings.push(Finding::new(
                    prog,
                    Lint::OverBudgetPath,
                    config.entry,
                    format!(
                        "the longest fast path runs {longest} instructions, over the \
                         budget of {budget}"
                    ),
                ));
            }
        }
    }
}
