//! # efex-verify — static analysis of assembled guest handler code
//!
//! The paper's headline claims are *static properties* of the first-level
//! exception handler: it saves only minimal state, runs a bounded number of
//! kernel instructions (Table 3), touches only pinned memory so it can never
//! itself take a TLB miss while the original exception state is live in CP0,
//! and returns to user mode without re-entering the kernel. The rest of the
//! repository checks those properties *dynamically*, by running workloads;
//! this crate proves them over the assembled images before anything runs.
//!
//! [`analyze`] takes an assembled [`Program`] and a [`VerifyConfig`] and
//! produces a [`Report`]:
//!
//! - **CFG construction** ([`mod@cfg`]) over the decoded instructions reachable
//!   from the configured entry, with delay-slot-aware successor edges: the
//!   instruction after a branch executes *before* control transfers, so its
//!   successors are the branch's targets, not the next address.
//! - **Hazard lints** ([`checks`]): a control transfer in a delay slot, a
//!   load in a delay slot whose destination is consumed at a branch target,
//!   an `rfe` outside the delay slot of its return jump, and instructions
//!   that can themselves fault (trapping arithmetic, unprovable memory
//!   references) on the recursive-exception-critical path before the
//!   handler has saved CP0 state.
//! - **Save-set liveness**: the clobber set of each handler phase, checked
//!   against the communication-page protocol — every clobbered register
//!   must be saved (or kernel-reserved), every saved register must be
//!   either clobbered or part of the declared user-scratch contract, and
//!   every contract register must actually be saved.
//! - **Static path bounds**: per-phase and total instruction/cycle counts
//!   along the fast path to the vector-to-user exit, asserted against the
//!   Table 3 budget.
//! - **Memory-reference lint**: a small abstract interpretation
//!   ([`absint`]) proves every address the handler touches resolves into a
//!   pinned region of the layout, aligned for its access width.
//!
//! The crate is deliberately independent of the simulated kernel: callers
//! (e.g. `efex-simos`) describe their layout through [`VerifyConfig`].

#![warn(missing_docs)]

pub mod absint;
pub mod budget;
pub mod cfg;
pub mod checks;
pub mod defuse;
pub mod diag;
pub mod interproc;
pub mod symex;

use efex_mips::asm::Program;
use efex_mips::isa::Reg;
use std::error::Error;
use std::fmt;

pub use budget::{FAST_PATH_CYCLES, FAST_PATH_INSTRUCTIONS};
pub use diag::{Finding, Lint, PathBounds, PhaseBound, Report};
pub use interproc::{CallGraph, Images};
pub use symex::{
    explore, DeliveryVariant, Depth, EntryKind, Scenario, ScenarioOutcome, SymexConfig, SymexReport,
};

/// A pinned memory region the analyzed handler is allowed to touch.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PinnedRegion {
    /// Name shown in diagnostics (e.g. `u-area`).
    pub name: String,
    /// Base virtual address, or `None` for a region whose base is only
    /// known at run time (reached through a [`PointerSlot`] load).
    pub base: Option<u32>,
    /// Region length in bytes.
    pub len: u32,
}

/// A word-sized slot whose load yields a pointer into a pinned region
/// (e.g. the u-area field holding the KSEG0 alias of the comm page).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PointerSlot {
    /// Absolute virtual address of the slot.
    pub addr: u32,
    /// Index into [`VerifyConfig::pinned`] of the region pointed to.
    pub region: usize,
}

/// Which analysis passes to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Checks {
    /// Delay-slot and `rfe`-placement hazards.
    pub hazards: bool,
    /// Save-set liveness against the communication-page protocol.
    pub save_set: bool,
    /// Static per-path instruction/cycle bounds between phase labels.
    pub bounds: bool,
    /// Pinned-region memory-reference proof.
    pub mem_refs: bool,
}

impl Checks {
    /// Every pass enabled — for first-level kernel handlers.
    pub fn all() -> Checks {
        Checks {
            hazards: true,
            save_set: true,
            bounds: true,
            mem_refs: true,
        }
    }

    /// Only the hazard lints — for user-mode code (trampolines, veneers)
    /// that legitimately touches unpinned memory and keeps no save contract.
    pub fn hazards_only() -> Checks {
        Checks {
            hazards: true,
            save_set: false,
            bounds: false,
            mem_refs: false,
        }
    }
}

/// Analysis parameters: what to analyze and against which contracts.
#[derive(Clone, PartialEq, Debug)]
pub struct VerifyConfig {
    /// Entry address of the analyzed handler (a resolved label).
    pub entry: u32,
    /// Additional roots to walk (secondary vectors, veneer entry points
    /// not reached by direct calls).
    pub extra_roots: Vec<u32>,
    /// Phase labels in address order (`(label, address)`); each phase
    /// extends to the next label, the last to [`VerifyConfig::end`].
    pub phases: Vec<(String, u32)>,
    /// One past the last handler address attributed to a phase.
    pub end: Option<u32>,
    /// Fast-path instruction budget (the paper's 65); exceeding it on any
    /// path to the vector-to-user exit is a finding.
    pub instruction_budget: Option<u64>,
    /// Registers the handler may clobber without saving ($k0/$k1: reserved
    /// for the kernel by the ABI, per Section 3.2.1).
    pub reserved: Vec<Reg>,
    /// Registers the communication-page protocol promises to the user
    /// handler as scratch (saved in the frame even if the kernel path does
    /// not clobber them).
    pub protocol_saved: Vec<Reg>,
    /// Critical-path end: until this address, a fault inside the handler
    /// would destroy live CP0 state, so nothing faultable is allowed.
    pub critical_until: Option<u32>,
    /// Pinned regions the handler may reference.
    pub pinned: Vec<PinnedRegion>,
    /// Loads from these slots yield pinned-region pointers.
    pub pointer_slots: Vec<PointerSlot>,
    /// Index into [`VerifyConfig::pinned`] of the save-frame region
    /// (stores of still-original registers into it count as saves).
    pub save_region: Option<usize>,
    /// Whether `syscall`/`break` fall through to the next instruction
    /// (true for user benchmarks; false when the tail syscall never
    /// returns, e.g. `sigreturn`).
    pub syscalls_return: bool,
    /// Which passes run.
    pub checks: Checks,
}

impl VerifyConfig {
    /// A hazard-lints-only configuration rooted at `entry`.
    pub fn hazards_only(entry: u32) -> VerifyConfig {
        VerifyConfig {
            entry,
            extra_roots: Vec::new(),
            phases: Vec::new(),
            end: None,
            instruction_budget: None,
            reserved: Vec::new(),
            protocol_saved: Vec::new(),
            critical_until: None,
            pinned: Vec::new(),
            pointer_slots: Vec::new(),
            save_region: None,
            syscalls_return: true,
            checks: Checks::hazards_only(),
        }
    }
}

/// A configuration error (the analysis itself never fails — code problems
/// become [`Finding`]s, not errors).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VerifyError {
    /// A [`PointerSlot::region`] or [`VerifyConfig::save_region`] index is
    /// out of bounds of [`VerifyConfig::pinned`].
    BadRegionIndex(usize),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::BadRegionIndex(i) => {
                write!(f, "pinned-region index {i} out of bounds")
            }
        }
    }
}

impl Error for VerifyError {}

/// Statically analyzes `prog` under `config`, returning every finding plus
/// the computed fast-path bounds and per-phase clobber sets.
///
/// # Errors
///
/// Only on an inconsistent [`VerifyConfig`]; problems in the analyzed code
/// are reported as [`Finding`]s in the [`Report`].
pub fn analyze(prog: &Program, config: &VerifyConfig) -> Result<Report, VerifyError> {
    for slot in &config.pointer_slots {
        if slot.region >= config.pinned.len() {
            return Err(VerifyError::BadRegionIndex(slot.region));
        }
    }
    if let Some(r) = config.save_region {
        if r >= config.pinned.len() {
            return Err(VerifyError::BadRegionIndex(r));
        }
    }

    let mut report = Report::new();
    let graph = cfg::Cfg::build(prog, config, &mut report);
    let states = absint::fixpoint(&graph, config);

    if config.checks.hazards {
        checks::hazards(prog, config, &graph, &mut report);
    }
    if config.checks.mem_refs {
        checks::mem_refs(prog, config, &graph, &states, &mut report);
    }
    if config.checks.save_set {
        checks::save_set(prog, config, &graph, &states, &mut report);
    }
    if config.checks.bounds {
        checks::bounds(prog, config, &graph, &mut report);
    }
    report.instructions_analyzed = graph.len();
    report.findings.sort_by_key(|f| f.addr);
    report.dedup();
    Ok(report)
}
