//! Register def-use classification over [`Instruction`].

use efex_mips::isa::{Instruction, Reg};

/// The general-purpose registers an instruction reads (at most three).
pub fn reads(inst: Instruction) -> Vec<Reg> {
    use Instruction::*;
    match inst {
        Sll { rt, .. } | Srl { rt, .. } | Sra { rt, .. } => vec![rt],
        Sllv { rt, rs, .. } | Srlv { rt, rs, .. } | Srav { rt, rs, .. } => vec![rt, rs],
        Jr { rs } | Jalr { rs, .. } => vec![rs],
        Mthi { rs } | Mtlo { rs } => vec![rs],
        Mult { rs, rt } | Multu { rs, rt } | Div { rs, rt } | Divu { rs, rt } => vec![rs, rt],
        Add { rs, rt, .. }
        | Addu { rs, rt, .. }
        | Sub { rs, rt, .. }
        | Subu { rs, rt, .. }
        | And { rs, rt, .. }
        | Or { rs, rt, .. }
        | Xor { rs, rt, .. }
        | Nor { rs, rt, .. }
        | Slt { rs, rt, .. }
        | Sltu { rs, rt, .. } => vec![rs, rt],
        Beq { rs, rt, .. } | Bne { rs, rt, .. } => vec![rs, rt],
        Blez { rs, .. }
        | Bgtz { rs, .. }
        | Bltz { rs, .. }
        | Bgez { rs, .. }
        | Bltzal { rs, .. }
        | Bgezal { rs, .. } => vec![rs],
        Addi { rs, .. }
        | Addiu { rs, .. }
        | Slti { rs, .. }
        | Sltiu { rs, .. }
        | Andi { rs, .. }
        | Ori { rs, .. }
        | Xori { rs, .. } => vec![rs],
        Lb { base, .. }
        | Lh { base, .. }
        | Lw { base, .. }
        | Lbu { base, .. }
        | Lhu { base, .. } => {
            vec![base]
        }
        Sb { rt, base, .. } | Sh { rt, base, .. } | Sw { rt, base, .. } => vec![rt, base],
        Mtc0 { rt, .. } => vec![rt],
        Utlbp { rs, .. } => vec![rs],
        Lui { .. }
        | J { .. }
        | Jal { .. }
        | Syscall { .. }
        | Break { .. }
        | Mfhi { .. }
        | Mflo { .. }
        | Mfc0 { .. }
        | Tlbr
        | Tlbwi
        | Tlbwr
        | Tlbp
        | Rfe
        | Xpcu
        | Hcall { .. } => Vec::new(),
    }
}

/// The general-purpose register an instruction writes, if any. Writes to
/// `$zero` are architectural no-ops and return `None`.
pub fn writes(inst: Instruction) -> Option<Reg> {
    use Instruction::*;
    let dst = match inst {
        Sll { rd, .. }
        | Srl { rd, .. }
        | Sra { rd, .. }
        | Sllv { rd, .. }
        | Srlv { rd, .. }
        | Srav { rd, .. }
        | Jalr { rd, .. }
        | Mfhi { rd }
        | Mflo { rd }
        | Add { rd, .. }
        | Addu { rd, .. }
        | Sub { rd, .. }
        | Subu { rd, .. }
        | And { rd, .. }
        | Or { rd, .. }
        | Xor { rd, .. }
        | Nor { rd, .. }
        | Slt { rd, .. }
        | Sltu { rd, .. } => rd,
        Addi { rt, .. }
        | Addiu { rt, .. }
        | Slti { rt, .. }
        | Sltiu { rt, .. }
        | Andi { rt, .. }
        | Ori { rt, .. }
        | Xori { rt, .. }
        | Lui { rt, .. }
        | Lb { rt, .. }
        | Lh { rt, .. }
        | Lw { rt, .. }
        | Lbu { rt, .. }
        | Lhu { rt, .. }
        | Mfc0 { rt, .. } => rt,
        Jal { .. } | Bltzal { .. } | Bgezal { .. } => Reg::RA,
        _ => return None,
    };
    (dst != Reg::ZERO).then_some(dst)
}

/// The destination of a load, if the instruction is one.
pub fn load_dest(inst: Instruction) -> Option<Reg> {
    use Instruction::*;
    match inst {
        Lb { rt, .. } | Lh { rt, .. } | Lw { rt, .. } | Lbu { rt, .. } | Lhu { rt, .. } => {
            (rt != Reg::ZERO).then_some(rt)
        }
        _ => None,
    }
}

/// The access width in bytes of a load/store, if the instruction is one.
pub fn access_width(inst: Instruction) -> Option<u32> {
    use Instruction::*;
    match inst {
        Lb { .. } | Lbu { .. } | Sb { .. } => Some(1),
        Lh { .. } | Lhu { .. } | Sh { .. } => Some(2),
        Lw { .. } | Sw { .. } => Some(4),
        _ => None,
    }
}

/// The `(base, offset)` of a load/store, if the instruction is one.
pub fn access_addr(inst: Instruction) -> Option<(Reg, i16)> {
    use Instruction::*;
    match inst {
        Lb { base, imm, .. }
        | Lh { base, imm, .. }
        | Lw { base, imm, .. }
        | Lbu { base, imm, .. }
        | Lhu { base, imm, .. }
        | Sb { base, imm, .. }
        | Sh { base, imm, .. }
        | Sw { base, imm, .. } => Some((base, imm)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_writes_are_discarded() {
        let i = Instruction::Addiu {
            rt: Reg::ZERO,
            rs: Reg::T0,
            imm: 1,
        };
        assert_eq!(writes(i), None);
        assert_eq!(reads(i), vec![Reg::T0]);
    }

    #[test]
    fn stores_read_both_operands() {
        let i = Instruction::Sw {
            rt: Reg::AT,
            base: Reg::K1,
            imm: 12,
        };
        assert_eq!(reads(i), vec![Reg::AT, Reg::K1]);
        assert_eq!(writes(i), None);
        assert_eq!(access_width(i), Some(4));
        assert_eq!(access_addr(i), Some((Reg::K1, 12)));
    }

    #[test]
    fn calls_link_ra() {
        assert_eq!(writes(Instruction::Jal { target: 0 }), Some(Reg::RA));
        assert_eq!(
            writes(Instruction::Jalr {
                rd: Reg::RA,
                rs: Reg::T9
            }),
            Some(Reg::RA)
        );
    }

    #[test]
    fn loads_have_destinations() {
        let i = Instruction::Lw {
            rt: Reg::K1,
            base: Reg::K1,
            imm: 8,
        };
        assert_eq!(load_dest(i), Some(Reg::K1));
        assert_eq!(writes(i), Some(Reg::K1));
    }
}
