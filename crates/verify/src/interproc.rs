//! Interprocedural support for the symbolic explorer: a multi-image code
//! view and a static `jal`/`jr` call graph with recursion detection.
//!
//! The delivery path crosses image boundaries — the kernel vector lives in
//! one assembled [`Program`], the signal trampoline in another, and the
//! guest handler in a third — so the explorer needs a single address space
//! stitched from several images ([`Images`]) and a whole-system view of
//! which functions call which ([`CallGraph`]). The call graph is
//! deliberately conservative: it only follows statically resolvable
//! transfers (`j`, `jal`, branches) and records every `jalr` site as
//! unresolved, leaving precise indirect-target resolution to the symbolic
//! executor's value tracking.

use std::collections::{BTreeMap, BTreeSet};

use efex_mips::asm::Program;
use efex_mips::decode::decode;
use efex_mips::isa::Instruction;

use crate::diag::{Finding, Lint};

/// Several assembled images addressed as one system.
///
/// Images must not overlap; lookup scans in insertion order, so the first
/// image containing an address wins.
pub struct Images<'a> {
    images: Vec<(&'a str, &'a Program)>,
}

impl<'a> Images<'a> {
    /// Builds the view from `(name, program)` pairs; `name` tags findings
    /// so a diagnostic says which image it points into.
    pub fn new(images: Vec<(&'a str, &'a Program)>) -> Images<'a> {
        Images { images }
    }

    /// The `(name, program)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&'a str, &'a Program)> + '_ {
        self.images.iter().copied()
    }

    /// The image containing `addr`, if any.
    pub fn program_at(&self, addr: u32) -> Option<(&'a str, &'a Program)> {
        self.images
            .iter()
            .copied()
            .find(|(_, p)| p.word_at(addr).is_some())
    }

    /// The code word at `addr` in whichever image holds it.
    pub fn word_at(&self, addr: u32) -> Option<u32> {
        self.images.iter().find_map(|(_, p)| p.word_at(addr))
    }

    /// Decodes the instruction at `addr`: `None` when no image holds the
    /// address, `Some(None)` when the word does not decode.
    pub fn decode_at(&self, addr: u32) -> Option<Option<Instruction>> {
        self.word_at(addr).map(|w| decode(w).ok())
    }

    /// Resolves `name` against each image's symbol table in order.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.images.iter().find_map(|(_, p)| p.symbol(name))
    }

    /// Builds a [`Finding`] at `addr`, resolved (label, line, disassembly)
    /// against the owning image, with the image name prefixed onto the
    /// message so multi-image reports stay readable.
    pub fn finding(&self, lint: Lint, addr: u32, message: impl Into<String>) -> Finding {
        let message = message.into();
        match self.program_at(addr) {
            Some((name, prog)) => Finding::new(prog, lint, addr, format!("[{name}] {message}")),
            None => Finding {
                lint,
                addr,
                location: format!("{addr:#010x}"),
                line: None,
                message,
                context: "<outside all images>".to_string(),
            },
        }
    }
}

/// One function discovered by the call-graph walk.
#[derive(Clone, Debug)]
pub struct FuncInfo {
    /// Entry address.
    pub entry: u32,
    /// `label+off` of the entry, resolved against the owning image.
    pub location: String,
    /// Reachable instructions inside the function body.
    pub instructions: usize,
    /// Entries of functions this one calls via `jal`.
    pub callees: BTreeSet<u32>,
    /// Addresses of `jalr` call sites inside the body, whose targets the
    /// static walk cannot resolve.
    pub indirect_sites: Vec<u32>,
}

/// The static `jal` call graph over a set of root entry points.
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    /// Discovered functions by entry address.
    pub functions: BTreeMap<u32, FuncInfo>,
    /// Function entries that sit on a `jal` cycle (static recursion).
    pub recursive: Vec<u32>,
    /// Longest acyclic call chain (in functions) from any root.
    pub max_depth: usize,
}

impl CallGraph {
    /// Walks each root's function body, following branches and `j`
    /// intra-procedurally and `jal` as call edges, until the whole
    /// statically reachable call graph is discovered.
    pub fn build(images: &Images<'_>, roots: &[u32]) -> CallGraph {
        let mut graph = CallGraph::default();
        let mut pending: Vec<u32> = roots.to_vec();
        while let Some(entry) = pending.pop() {
            if graph.functions.contains_key(&entry) {
                continue;
            }
            let info = walk_function(images, entry);
            for &callee in &info.callees {
                pending.push(callee);
            }
            graph.functions.insert(entry, info);
        }
        graph.recursive = find_cycles(&graph.functions);
        graph.max_depth = max_depth(&graph.functions, roots, &graph.recursive);
        graph
    }

    /// Findings for every recursive function: recursion means no static
    /// bound on delivery-path length.
    pub fn recursion_findings(&self, images: &Images<'_>) -> Vec<Finding> {
        self.recursive
            .iter()
            .map(|&entry| {
                images.finding(
                    Lint::RecursiveCall,
                    entry,
                    "function participates in a jal call cycle; no static path bound exists",
                )
            })
            .collect()
    }
}

/// Linear sweep of one function body: follow branch targets and `j`
/// in-function, record `jal` callees and `jalr` sites, stop blocks at `jr`.
fn walk_function(images: &Images<'_>, entry: u32) -> FuncInfo {
    let mut seen = BTreeSet::new();
    let mut work = vec![entry];
    let mut callees = BTreeSet::new();
    let mut indirect_sites = Vec::new();
    while let Some(addr) = work.pop() {
        if !seen.insert(addr) {
            continue;
        }
        let Some(Some(inst)) = images.decode_at(addr) else {
            continue; // undecodable / off-image: the executor reports these
        };
        match inst {
            Instruction::Jal { target } => {
                callees.insert(crate::cfg::jump_target(addr, target));
                work.push(addr.wrapping_add(8)); // past the delay slot
                work.push(addr.wrapping_add(4)); // the slot itself
            }
            Instruction::Jalr { .. } => {
                indirect_sites.push(addr);
                work.push(addr.wrapping_add(8));
                work.push(addr.wrapping_add(4));
            }
            Instruction::J { target } => {
                work.push(crate::cfg::jump_target(addr, target));
                work.push(addr.wrapping_add(4));
            }
            Instruction::Jr { .. } => {
                work.push(addr.wrapping_add(4)); // delay slot still executes
            }
            Instruction::Beq { imm, .. }
            | Instruction::Bne { imm, .. }
            | Instruction::Blez { imm, .. }
            | Instruction::Bgtz { imm, .. }
            | Instruction::Bltz { imm, .. }
            | Instruction::Bgez { imm, .. } => {
                work.push(crate::cfg::branch_target(addr, imm));
                work.push(addr.wrapping_add(4));
                work.push(addr.wrapping_add(8));
            }
            Instruction::Bltzal { imm, .. } | Instruction::Bgezal { imm, .. } => {
                callees.insert(crate::cfg::branch_target(addr, imm));
                work.push(addr.wrapping_add(4));
                work.push(addr.wrapping_add(8));
            }
            Instruction::Hcall { .. } | Instruction::Xpcu => {
                // Terminators for the walk: control leaves the guest ISA.
            }
            _ => {
                work.push(addr.wrapping_add(4));
            }
        }
    }
    let location = match images.program_at(entry).and_then(|(_, p)| p.locate(entry)) {
        Some((label, 0)) => label.to_string(),
        Some((label, off)) => format!("{label}+{off:#x}"),
        None => format!("{entry:#010x}"),
    };
    FuncInfo {
        entry,
        location,
        instructions: seen.len(),
        callees,
        indirect_sites,
    }
}

/// Entries on a call cycle, via DFS with an on-stack set.
fn find_cycles(functions: &BTreeMap<u32, FuncInfo>) -> Vec<u32> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        Unvisited,
        OnStack,
        Done,
    }
    let mut marks: BTreeMap<u32, Mark> = functions.keys().map(|&k| (k, Mark::Unvisited)).collect();
    let mut cyclic = BTreeSet::new();
    fn dfs(
        entry: u32,
        functions: &BTreeMap<u32, FuncInfo>,
        marks: &mut BTreeMap<u32, Mark>,
        cyclic: &mut BTreeSet<u32>,
    ) {
        marks.insert(entry, Mark::OnStack);
        if let Some(info) = functions.get(&entry) {
            for &callee in &info.callees {
                match marks.get(&callee).copied() {
                    Some(Mark::Unvisited) => dfs(callee, functions, marks, cyclic),
                    Some(Mark::OnStack) => {
                        cyclic.insert(callee);
                        cyclic.insert(entry);
                    }
                    _ => {}
                }
            }
        }
        marks.insert(entry, Mark::Done);
    }
    let entries: Vec<u32> = functions.keys().copied().collect();
    for entry in entries {
        if marks.get(&entry) == Some(&Mark::Unvisited) {
            dfs(entry, functions, &mut marks, &mut cyclic);
        }
    }
    cyclic.into_iter().collect()
}

/// Longest acyclic root-to-leaf call chain, skipping recursive components
/// (their depth is unbounded and reported separately).
fn max_depth(functions: &BTreeMap<u32, FuncInfo>, roots: &[u32], recursive: &[u32]) -> usize {
    fn depth(
        entry: u32,
        functions: &BTreeMap<u32, FuncInfo>,
        recursive: &[u32],
        memo: &mut BTreeMap<u32, usize>,
    ) -> usize {
        if recursive.contains(&entry) {
            return 1;
        }
        if let Some(&d) = memo.get(&entry) {
            return d;
        }
        memo.insert(entry, 1); // cycle guard; recursive entries filtered above
        let d = 1 + functions
            .get(&entry)
            .map(|i| {
                i.callees
                    .iter()
                    .map(|&c| depth(c, functions, recursive, memo))
                    .max()
                    .unwrap_or(0)
            })
            .unwrap_or(0);
        memo.insert(entry, d);
        d
    }
    let mut memo = BTreeMap::new();
    roots
        .iter()
        .map(|&r| depth(r, functions, recursive, &mut memo))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use efex_mips::asm::assemble;

    #[test]
    fn discovers_callees_and_depth() {
        let prog = assemble(
            r#"
            .org 0x80001000
            main:
                jal mid
                nop
                jr $ra
                nop
            mid:
                jal leaf
                nop
                jr $ra
                nop
            leaf:
                jr $ra
                nop
            "#,
        )
        .unwrap();
        let images = Images::new(vec![("test", &prog)]);
        let g = CallGraph::build(&images, &[prog.symbol("main").unwrap()]);
        assert_eq!(g.functions.len(), 3);
        assert!(g.recursive.is_empty());
        assert_eq!(g.max_depth, 3);
    }

    #[test]
    fn flags_recursion() {
        let prog = assemble(
            r#"
            .org 0x80001000
            even:
                jal odd
                nop
                jr $ra
                nop
            odd:
                jal even
                nop
                jr $ra
                nop
            "#,
        )
        .unwrap();
        let images = Images::new(vec![("test", &prog)]);
        let g = CallGraph::build(&images, &[prog.symbol("even").unwrap()]);
        assert_eq!(g.recursive.len(), 2);
        let findings = g.recursion_findings(&images);
        assert_eq!(findings.len(), 2);
        assert!(findings[0].message.contains("call cycle"));
    }
}
