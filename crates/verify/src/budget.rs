//! The single source of truth for the fast-path static budget (Table 3).
//!
//! Historically the verifier carried a 65-cycle budget while the health
//! invariants checked 44 instructions / 55 cycles — a split-brain where the
//! same paper table was transcribed twice with different arithmetic. The
//! constants below are the one authoritative transcription; `efex-simos`
//! re-exports them for its boot-time image verification, and `efex-health`
//! and `efex-fleet` build their ceiling invariants from them.
//!
//! The numbers are the *static* longest vector-exit path through the
//! assembled first-level handler, as proven by both the abstract
//! interpreter ([`crate::analyze`]) and the symbolic explorer
//! ([`crate::symex`]): 44 instructions, 55 cycles under the
//! [`efex_mips::cycles`] model (every instruction costs its base cycle, and
//! the save phase's one load plus seven stores each add a memory-access
//! cycle).

/// Maximum instructions on any path from the general exception vector to
/// the vector exit (`jr`/`rfe`), per Table 3 of the paper: decode 7 +
/// compat 7 + save 17 + fpcheck 6 + tlbcheck 3 + vector 4.
pub const FAST_PATH_INSTRUCTIONS: u64 = 44;

/// Cycle cost of that same longest path under the simulator's cost model:
/// the 44 base cycles plus 11 memory-access cycles (save phase: 1 load +
/// 7 stores; one load each in the compat, fpcheck, and vector phases).
pub const FAST_PATH_CYCLES: u64 = 55;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_budget_exceeds_instruction_budget_by_memory_accesses() {
        // Under the cost model every instruction is at least one cycle, so
        // the cycle budget can never be below the instruction budget; the
        // difference is exactly the fast path's 11 memory-access cycles.
        assert_eq!(FAST_PATH_CYCLES - FAST_PATH_INSTRUCTIONS, 11);
    }
}
