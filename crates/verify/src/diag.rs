//! Findings, path bounds, and the analysis report.

use efex_mips::asm::Program;
use efex_mips::disasm::disassemble_at;
use efex_mips::isa::{Instruction, Reg};
use std::fmt;

/// The kind of defect a [`Finding`] reports.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Lint {
    /// A branch or jump sits in another control transfer's delay slot —
    /// architecturally undefined on the MIPS.
    BranchInDelaySlot,
    /// A load in a delay slot whose destination is consumed by the first
    /// instruction at a branch target: the MIPS-I load delay extends across
    /// the transfer, so the consumer sees the stale value.
    LoadUseInDelaySlot,
    /// An `rfe` outside the delay slot of its return jump: the CP0 status
    /// pop and the PC redirect would not commit together.
    MisplacedRfe,
    /// Overflow-trapping arithmetic (`add`/`addi`/`sub`) on the
    /// recursive-exception-critical path, where a fault would destroy the
    /// live CP0 exception state.
    TrappingArithOnCriticalPath,
    /// A register the handler clobbers without saving it in the
    /// communication frame (and which is not kernel-reserved).
    UnsavedClobber,
    /// A register saved into the communication frame that is neither
    /// clobbered by the handler nor part of the user-scratch contract.
    DeadSave,
    /// A register the protocol promises to the user handler that the code
    /// never actually saves.
    MissingProtocolSave,
    /// A fast path longer than the configured instruction budget.
    OverBudgetPath,
    /// A path through the handler that revisits an instruction — no static
    /// instruction bound exists.
    UnboundedPath,
    /// A memory reference that cannot be proven to land, aligned, inside a
    /// pinned region.
    UnpinnedMemoryReference,
    /// Execution can fall past the end of the assembled image.
    RunsOffImage,
    /// A reachable word that does not decode to an instruction.
    Undecodable,
    /// A protocol register saved into a comm-frame slot other than its
    /// canonical one (symbolic pass).
    WrongSlotSave,
    /// A register restored from a comm-frame slot that does not belong to
    /// it on some path to the resume (symbolic pass).
    WrongSlotRestore,
    /// A comm-page word read on a path where no earlier instruction (guest
    /// or host) defined it during this delivery (symbolic pass).
    UndefinedCommRead,
    /// A path reaches the vector-to-user exit without having saved one of
    /// the protocol registers (symbolic pass).
    MissingSaveOnPath,
    /// A faultable instruction executes while EPC/Cause/BadVaddr are still
    /// live in CP0 outside the documented recursive-exception window
    /// (symbolic pass).
    VulnerableWindow,
    /// The UTLB refill loop re-raised more times than the architectural
    /// bound — the refill path does not terminate (symbolic pass).
    RefillDivergence,
    /// An indirect jump whose target the symbolic executor cannot resolve
    /// to a concrete address or a known protocol value (symbolic pass).
    UnresolvedJump,
    /// An architecturally raisable exception class that never reaches any
    /// handler terminal (symbolic pass).
    ClassUnreachable,
    /// A call-graph cycle through `jal`/`jr` — recursion with no static
    /// path bound (symbolic pass).
    RecursiveCall,
}

impl Lint {
    /// Stable kebab-case code used in diagnostics and tests.
    pub fn code(self) -> &'static str {
        match self {
            Lint::BranchInDelaySlot => "delay-slot-branch",
            Lint::LoadUseInDelaySlot => "delay-slot-load-use",
            Lint::MisplacedRfe => "misplaced-rfe",
            Lint::TrappingArithOnCriticalPath => "critical-path-trap",
            Lint::UnsavedClobber => "unsaved-clobber",
            Lint::DeadSave => "dead-save",
            Lint::MissingProtocolSave => "missing-protocol-save",
            Lint::OverBudgetPath => "over-budget-path",
            Lint::UnboundedPath => "unbounded-path",
            Lint::UnpinnedMemoryReference => "unpinned-memory-reference",
            Lint::RunsOffImage => "runs-off-image",
            Lint::Undecodable => "undecodable",
            Lint::WrongSlotSave => "wrong-slot-save",
            Lint::WrongSlotRestore => "wrong-slot-restore",
            Lint::UndefinedCommRead => "undefined-comm-read",
            Lint::MissingSaveOnPath => "missing-save-on-path",
            Lint::VulnerableWindow => "vulnerable-window",
            Lint::RefillDivergence => "refill-divergence",
            Lint::UnresolvedJump => "unresolved-jump",
            Lint::ClassUnreachable => "class-unreachable",
            Lint::RecursiveCall => "recursive-call",
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One diagnostic: a defect at a specific instruction, located by label,
/// source line, and disassembly.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Finding {
    /// What kind of defect.
    pub lint: Lint,
    /// Address of the offending instruction.
    pub addr: u32,
    /// `label+0xOFF` location resolved against the program's code labels,
    /// or the raw address when no label precedes it.
    pub location: String,
    /// 1-based source line of the instruction, when known.
    pub line: Option<u32>,
    /// Human-readable description of the defect.
    pub message: String,
    /// Disassembly of the offending instruction (with resolved targets).
    pub context: String,
}

impl Finding {
    /// Builds a finding at `addr`, resolving location, line, and
    /// disassembly from `prog`.
    pub fn new(prog: &Program, lint: Lint, addr: u32, message: impl Into<String>) -> Finding {
        let location = match prog.locate(addr) {
            Some((label, 0)) => label.to_string(),
            Some((label, off)) => format!("{label}+{off:#x}"),
            None => format!("{addr:#010x}"),
        };
        let context = match prog.word_at(addr).map(efex_mips::decode::decode) {
            Some(Ok(inst)) => disassemble_at(inst, addr, Some(prog.symbols())),
            Some(Err(_)) => format!(".word {:#010x}", prog.word_at(addr).unwrap_or(0)),
            None => "<no instruction>".to_string(),
        };
        Finding {
            lint,
            addr,
            location,
            line: prog.line_at(addr),
            message: message.into(),
            context,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:#010x} {} [{}] {}",
            self.addr, self.location, self.lint, self.message
        )?;
        if let Some(line) = self.line {
            write!(f, " (line {line})")?;
        }
        write!(f, "\n    > {}", self.context)
    }
}

/// Static instruction/cycle counts of one phase along the fast path.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PhaseBound {
    /// Phase label (e.g. `fexc_save`).
    pub label: String,
    /// Instructions executed inside the phase on the fast path.
    pub instructions: u64,
    /// Cycles charged to the phase (single-issue cost model).
    pub cycles: u64,
}

/// Static bounds of the fast path: entry to the vector-to-user exit.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PathBounds {
    /// Per-phase counts in handler order.
    pub per_phase: Vec<PhaseBound>,
    /// Total instructions on the longest vector-to-user path.
    pub total_instructions: u64,
    /// Total cycles on that path.
    pub total_cycles: u64,
}

/// The result of [`crate::analyze`]: findings plus computed facts.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Report {
    /// Every defect found, in address order.
    pub findings: Vec<Finding>,
    /// Fast-path bounds, when the bounds check ran and a vector-to-user
    /// exit exists.
    pub fast_path: Option<PathBounds>,
    /// Registers written per phase (phase label, clobbered registers),
    /// computed by the save-set pass.
    pub phase_clobbers: Vec<(String, Vec<Reg>)>,
    /// Reachable instructions analyzed.
    pub instructions_analyzed: usize,
}

impl Report {
    /// An empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// True when no finding was produced.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings of one lint kind.
    pub fn with_lint(&self, lint: Lint) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.lint == lint)
    }

    /// Drops all but the first finding for each `(address, lint)` pair.
    ///
    /// The analysis phases overlap on purpose (the hazard walk, the save-set
    /// pass, and the symbolic explorer all visit the same instructions), so
    /// one defect can surface several times with slightly different
    /// wording. Reports keep the first — phases run in severity order — and
    /// callers see each defect once.
    pub fn dedup(&mut self) {
        let mut seen = std::collections::HashSet::new();
        self.findings.retain(|f| seen.insert((f.addr, f.lint)));
    }

    /// Renders the report as a monospace block: findings first, then the
    /// fast-path table when present.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!("{f}\n"));
        }
        if let Some(fp) = &self.fast_path {
            out.push_str(&format!(
                "fast path: {} instructions, {} cycles\n",
                fp.total_instructions, fp.total_cycles
            ));
            for p in &fp.per_phase {
                out.push_str(&format!(
                    "  {:<16} {:>3} instructions {:>4} cycles\n",
                    p.label, p.instructions, p.cycles
                ));
            }
        }
        out
    }
}

/// Escapes `s` for inclusion in a JSON string literal (RFC 8259: quote,
/// backslash, and control characters).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Finding {
    /// The finding as a JSON object (one line, no trailing newline), for
    /// the machine-readable `lint --json` output.
    pub fn to_json(&self) -> String {
        let line = match self.line {
            Some(n) => n.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"lint\":\"{}\",\"addr\":{},\"location\":\"{}\",\"line\":{},\"message\":\"{}\",\"context\":\"{}\"}}",
            self.lint.code(),
            self.addr,
            json_escape(&self.location),
            line,
            json_escape(&self.message),
            json_escape(&self.context),
        )
    }
}

/// The per-instruction cost charged by the simulator's single-issue model
/// (base + memory + multiply/divide/TLB latencies) — the static side of the
/// cycle bound.
pub fn static_cost(inst: Instruction) -> u64 {
    use efex_mips::cycles;
    let mut cost = cycles::BASE;
    if inst.is_memory_access() {
        cost += cycles::MEM_ACCESS;
    }
    match inst {
        Instruction::Mult { .. } | Instruction::Multu { .. } => cost += cycles::MULT,
        Instruction::Div { .. } | Instruction::Divu { .. } => cost += cycles::DIV,
        Instruction::Tlbr
        | Instruction::Tlbwi
        | Instruction::Tlbwr
        | Instruction::Tlbp
        | Instruction::Utlbp { .. } => cost += cycles::TLB_OP,
        _ => {}
    }
    cost
}
