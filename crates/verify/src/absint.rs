//! A small abstract interpretation over register values.
//!
//! The memory-reference lint must *prove* that every address the handler
//! touches lands inside a pinned region, including the comm-page frame
//! computed as `base + 32*code` where `base` comes from a u-area load and
//! `code` from masking the cause register. The domain therefore tracks
//! constants, aligned ranges, and region-relative pointers:
//!
//! - [`AbsVal::Range`] `{lo, hi, align}` means the value is in `[lo, hi]`
//!   and congruent to `lo` modulo `align` (`align == 0` means exactly
//!   `lo`, i.e. `lo == hi`).
//! - [`AbsVal::Ptr`] carries the same range as an *offset from the base of
//!   a pinned region* whose absolute address may only be known at run time.
//!
//! Alongside values, each state tracks which registers still hold their
//! handler-entry contents (the *orig* bits): the save-set pass uses them to
//! tell a genuine register save apart from a data store through the same
//! register.

use std::collections::BTreeMap;

use efex_mips::isa::{Instruction, Reg};

use crate::cfg::Cfg;
use crate::VerifyConfig;

/// Greatest common divisor, with `gcd(0, x) == x`.
fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// An abstract register value.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AbsVal {
    /// Unreached (identity of join).
    #[default]
    Bot,
    /// Exactly this value.
    Const(u32),
    /// In `[lo, hi]`, congruent to `lo` modulo `align` (0 = exact).
    Range {
        /// Inclusive lower bound.
        lo: u32,
        /// Inclusive upper bound.
        hi: u32,
        /// Congruence modulus of `value - lo` (0 when `lo == hi`).
        align: u32,
    },
    /// Offset into pinned region `region`: the offset is in `[lo, hi]` and
    /// congruent to `lo` modulo `align`.
    Ptr {
        /// Index into [`VerifyConfig::pinned`].
        region: usize,
        /// Inclusive lower offset bound.
        lo: u32,
        /// Inclusive upper offset bound.
        hi: u32,
        /// Congruence modulus of `offset - lo` (0 when `lo == hi`).
        align: u32,
    },
    /// Anything.
    Unknown,
}

impl AbsVal {
    fn range(lo: u32, hi: u32, align: u32) -> AbsVal {
        if lo == hi {
            AbsVal::Const(lo)
        } else {
            AbsVal::Range { lo, hi, align }
        }
    }

    /// `(lo, hi, effective align)` of a numeric value, when bounded.
    fn bounds(self) -> Option<(u32, u32, u32)> {
        match self {
            AbsVal::Const(c) => Some((c, c, 0)),
            AbsVal::Range { lo, hi, align } => Some((lo, hi, align)),
            _ => None,
        }
    }

    /// Least upper bound of two values.
    pub fn join(self, other: AbsVal) -> AbsVal {
        use AbsVal::*;
        match (self, other) {
            (Bot, v) | (v, Bot) => v,
            (a, b) if a == b => a,
            (Const(a), Const(b)) => AbsVal::range(a.min(b), a.max(b), a.abs_diff(b)),
            (Const(c), Range { lo, hi, align }) | (Range { lo, hi, align }, Const(c)) => {
                AbsVal::range(
                    lo.min(c),
                    hi.max(c),
                    gcd(gcd(align, lo.abs_diff(c)), hi.abs_diff(c)),
                )
            }
            (
                Range {
                    lo: l1,
                    hi: h1,
                    align: a1,
                },
                Range {
                    lo: l2,
                    hi: h2,
                    align: a2,
                },
            ) => AbsVal::range(l1.min(l2), h1.max(h2), gcd(gcd(a1, a2), l1.abs_diff(l2))),
            (
                Ptr {
                    region: r1,
                    lo: l1,
                    hi: h1,
                    align: a1,
                },
                Ptr {
                    region: r2,
                    lo: l2,
                    hi: h2,
                    align: a2,
                },
            ) if r1 == r2 => {
                let (lo, hi) = (l1.min(l2), h1.max(h2));
                let align = gcd(gcd(a1, a2), l1.abs_diff(l2));
                Ptr {
                    region: r1,
                    lo,
                    hi,
                    align: if lo == hi { 0 } else { align },
                }
            }
            _ => Unknown,
        }
    }

    fn add(self, other: AbsVal) -> AbsVal {
        use AbsVal::*;
        match (self, other) {
            (Const(a), Const(b)) => Const(a.wrapping_add(b)),
            (
                Ptr {
                    region,
                    lo,
                    hi,
                    align,
                },
                v,
            )
            | (
                v,
                Ptr {
                    region,
                    lo,
                    hi,
                    align,
                },
            ) => match v.bounds() {
                Some((vl, vh, va)) => {
                    let (Some(nl), Some(nh)) = (lo.checked_add(vl), hi.checked_add(vh)) else {
                        return Unknown;
                    };
                    Ptr {
                        region,
                        lo: nl,
                        hi: nh,
                        align: if nl == nh { 0 } else { gcd(align, va) },
                    }
                }
                None => Unknown,
            },
            (a, b) => match (a.bounds(), b.bounds()) {
                (Some((al, ah, aa)), Some((bl, bh, ba))) => {
                    match (al.checked_add(bl), ah.checked_add(bh)) {
                        (Some(nl), Some(nh)) => AbsVal::range(nl, nh, gcd(aa, ba)),
                        _ => Unknown,
                    }
                }
                _ => Unknown,
            },
        }
    }

    fn add_imm(self, imm: i16) -> AbsVal {
        self.add(AbsVal::Const(imm as i32 as u32))
    }
}

/// Abstract machine state at one program point: per-register values plus
/// the bitmask of registers still holding their handler-entry contents.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RegState {
    /// Abstract value of each general-purpose register.
    pub regs: [AbsVal; 32],
    /// Bit `r` set: register `r` still holds its value from handler entry.
    pub orig: u32,
}

impl RegState {
    /// The state at a handler root: nothing known, everything original.
    pub fn entry() -> RegState {
        let mut regs = [AbsVal::Unknown; 32];
        regs[0] = AbsVal::Const(0);
        RegState { regs, orig: !0 }
    }

    /// The value of `r`.
    pub fn reg(&self, r: Reg) -> AbsVal {
        self.regs[r.number() as usize]
    }

    /// Whether `r` still holds its handler-entry value.
    pub fn is_orig(&self, r: Reg) -> bool {
        self.orig & (1 << r.number()) != 0
    }

    fn set(&mut self, r: Reg, v: AbsVal) {
        if r == Reg::ZERO {
            return;
        }
        self.regs[r.number() as usize] = v;
        self.orig &= !(1 << r.number());
    }

    fn join(&mut self, other: &RegState) -> bool {
        let mut changed = false;
        for i in 0..32 {
            let j = self.regs[i].join(other.regs[i]);
            if j != self.regs[i] {
                self.regs[i] = j;
                changed = true;
            }
        }
        let orig = self.orig & other.orig;
        if orig != self.orig {
            self.orig = orig;
            changed = true;
        }
        changed
    }
}

/// The abstract address of a load/store with base value `base` and signed
/// offset `imm`.
pub fn effective_address(base: AbsVal, imm: i16) -> AbsVal {
    base.add_imm(imm)
}

/// Transfer function: the state after executing `inst` in state `s`.
pub fn transfer(s: &RegState, inst: Instruction, config: &VerifyConfig) -> RegState {
    use Instruction::*;
    let mut out = *s;
    match inst {
        Lui { rt, imm } => out.set(rt, AbsVal::Const(u32::from(imm) << 16)),
        Ori { rt, rs, imm } => {
            let v = match s.reg(rs) {
                AbsVal::Const(c) => AbsVal::Const(c | u32::from(imm)),
                v if imm == 0 => v,
                _ => AbsVal::Unknown,
            };
            out.set(rt, v);
        }
        Andi { rt, rs, imm } => {
            let v = match s.reg(rs) {
                AbsVal::Const(c) => AbsVal::Const(c & u32::from(imm)),
                _ => AbsVal::range(0, u32::from(imm), 1),
            };
            out.set(rt, v);
        }
        Xori { rt, rs, imm } => {
            let v = match s.reg(rs) {
                AbsVal::Const(c) => AbsVal::Const(c ^ u32::from(imm)),
                v if imm == 0 => v,
                _ => AbsVal::Unknown,
            };
            out.set(rt, v);
        }
        Addi { rt, rs, imm } | Addiu { rt, rs, imm } => out.set(rt, s.reg(rs).add_imm(imm)),
        Slti { rt, .. } | Sltiu { rt, .. } => out.set(rt, AbsVal::range(0, 1, 1)),
        Slt { rd, .. } | Sltu { rd, .. } => out.set(rd, AbsVal::range(0, 1, 1)),
        Sll { rd, rt, shamt } => {
            let sh = u32::from(shamt) & 31;
            let v = if sh == 0 {
                s.reg(rt)
            } else {
                match s.reg(rt).bounds() {
                    // No bit may shift out, or the bounds stop bounding.
                    Some((lo, hi, align)) if hi.leading_zeros() >= sh => {
                        let na = if align == 0 { 0 } else { align << sh };
                        AbsVal::range(lo << sh, hi << sh, na)
                    }
                    _ => AbsVal::Unknown,
                }
            };
            out.set(rd, v);
        }
        Srl { rd, rt, shamt } => {
            let sh = u32::from(shamt) & 31;
            let v = if sh == 0 {
                s.reg(rt)
            } else {
                match s.reg(rt).bounds() {
                    Some((lo, hi, _)) => AbsVal::range(lo >> sh, hi >> sh, 1),
                    None => AbsVal::Unknown,
                }
            };
            out.set(rd, v);
        }
        Add { rd, rs, rt } | Addu { rd, rs, rt } => out.set(rd, s.reg(rs).add(s.reg(rt))),
        Sub { rd, rs, rt } | Subu { rd, rs, rt } => {
            let v = match (s.reg(rs), s.reg(rt)) {
                (AbsVal::Const(a), AbsVal::Const(b)) => AbsVal::Const(a.wrapping_sub(b)),
                (
                    AbsVal::Ptr {
                        region,
                        lo,
                        hi,
                        align,
                    },
                    AbsVal::Const(c),
                ) => match (lo.checked_sub(c), hi.checked_sub(c)) {
                    (Some(nl), Some(nh)) => AbsVal::Ptr {
                        region,
                        lo: nl,
                        hi: nh,
                        align,
                    },
                    _ => AbsVal::Unknown,
                },
                _ => AbsVal::Unknown,
            };
            out.set(rd, v);
        }
        Or { rd, rs, rt } => {
            // `move rd, rs` assembles to `or rd, rs, $zero`.
            let v = match (s.reg(rs), s.reg(rt)) {
                (v, AbsVal::Const(0)) | (AbsVal::Const(0), v) => v,
                (AbsVal::Const(a), AbsVal::Const(b)) => AbsVal::Const(a | b),
                _ => AbsVal::Unknown,
            };
            out.set(rd, v);
        }
        Lw { rt, base, imm } => {
            let v = match effective_address(s.reg(base), imm) {
                AbsVal::Const(ea) => config
                    .pointer_slots
                    .iter()
                    .find(|slot| slot.addr == ea)
                    .map(|slot| AbsVal::Ptr {
                        region: slot.region,
                        lo: 0,
                        hi: 0,
                        align: 0,
                    })
                    .unwrap_or(AbsVal::Unknown),
                _ => AbsVal::Unknown,
            };
            out.set(rt, v);
        }
        _ => {
            if let Some(w) = crate::defuse::writes(inst) {
                out.set(w, AbsVal::Unknown);
            }
        }
    }
    out
}

/// Runs the dataflow fixpoint over `graph`, returning the abstract state at
/// the **entry** of every reachable instruction.
///
/// Returns an empty map when neither the memory-reference nor the save-set
/// pass is enabled (no consumer, and user benchmarks may contain loops the
/// precise domain would widen away anyway).
pub fn fixpoint(graph: &Cfg, config: &VerifyConfig) -> BTreeMap<u32, RegState> {
    if !config.checks.mem_refs && !config.checks.save_set {
        return BTreeMap::new();
    }
    let mut states: BTreeMap<u32, RegState> = BTreeMap::new();
    let mut updates: BTreeMap<u32, u32> = BTreeMap::new();
    let mut work: Vec<u32> = Vec::new();

    for root in std::iter::once(config.entry).chain(config.extra_roots.iter().copied()) {
        if graph.node(root).is_some() {
            states.insert(root, RegState::entry());
            work.push(root);
        }
    }

    while let Some(addr) = work.pop() {
        let Some(node) = graph.node(addr) else {
            continue;
        };
        let Some(&entry) = states.get(&addr) else {
            continue;
        };
        let out = transfer(&entry, node.inst, config);
        for &succ in &node.succs {
            if graph.node(succ).is_none() {
                continue;
            }
            let changed = match states.get_mut(&succ) {
                Some(st) => st.join(&out),
                None => {
                    states.insert(succ, out);
                    true
                }
            };
            if changed {
                let n = updates.entry(succ).or_insert(0);
                *n += 1;
                if *n > 64 {
                    // Widen a diverging loop state straight to ⊤.
                    let st = states.get_mut(&succ).expect("just updated");
                    let orig = st.orig;
                    *st = RegState {
                        regs: [AbsVal::Unknown; 32],
                        orig,
                    };
                    st.regs[0] = AbsVal::Const(0);
                }
                work.push(succ);
            }
        }
    }
    states
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_of_consts_is_aligned_range() {
        let j = AbsVal::Const(0).join(AbsVal::Const(32));
        assert_eq!(
            j,
            AbsVal::Range {
                lo: 0,
                hi: 32,
                align: 32
            }
        );
        assert_eq!(AbsVal::Const(7).join(AbsVal::Const(7)), AbsVal::Const(7));
    }

    #[test]
    fn join_keeps_common_alignment() {
        let a = AbsVal::Range {
            lo: 0,
            hi: 64,
            align: 32,
        };
        let b = AbsVal::Range {
            lo: 8,
            hi: 40,
            align: 16,
        };
        assert_eq!(
            a.join(b),
            AbsVal::Range {
                lo: 0,
                hi: 64,
                align: 8
            }
        );
    }

    #[test]
    fn pointer_plus_aligned_range() {
        let p = AbsVal::Ptr {
            region: 0,
            lo: 0,
            hi: 0,
            align: 0,
        };
        let r = AbsVal::Range {
            lo: 0,
            hi: 992,
            align: 32,
        };
        assert_eq!(
            p.add(r),
            AbsVal::Ptr {
                region: 0,
                lo: 0,
                hi: 992,
                align: 32
            }
        );
    }

    #[test]
    fn bot_is_join_identity() {
        let v = AbsVal::Const(5);
        assert_eq!(AbsVal::Bot.join(v), v);
        assert_eq!(v.join(AbsVal::Bot), v);
    }
}
