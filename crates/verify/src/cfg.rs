//! Delay-slot-aware control-flow graph over the reachable instructions.
//!
//! On the MIPS the instruction after a branch executes *before* control
//! transfers, so the graph places the transfer's targets on the **delay
//! slot**, not on the branch itself: `branch → delay slot → targets`. That
//! linearization is exactly the pipeline's execution order, which lets the
//! downstream dataflow passes walk successor edges without special-casing
//! delayed transfers.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use efex_mips::asm::Program;
use efex_mips::decode::decode;
use efex_mips::isa::Instruction;

use crate::diag::{Finding, Lint, Report};
use crate::VerifyConfig;

/// One reachable instruction and its successor edges.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Node {
    /// The decoded instruction ([`Instruction::NOP`] when undecodable, so
    /// downstream passes need no special case).
    pub inst: Instruction,
    /// Execution-order successor addresses.
    pub succs: Vec<u32>,
    /// When this instruction sits in a delay slot, the address of the
    /// owning control transfer.
    pub delay_of: Option<u32>,
}

/// The control-flow graph: reachable instructions keyed by address.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Cfg {
    nodes: BTreeMap<u32, Node>,
}

/// The branch target of a PC-relative branch at `addr`.
pub fn branch_target(addr: u32, imm: i16) -> u32 {
    addr.wrapping_add(4)
        .wrapping_add((i32::from(imm) << 2) as u32)
}

/// The absolute target of a `j`/`jal` at `addr` (26-bit field within the
/// current 256 MB region).
pub fn jump_target(addr: u32, target: u32) -> u32 {
    (addr.wrapping_add(4) & 0xf000_0000) | (target << 2)
}

/// Statically-known transfer targets of a control transfer, from the
/// executing delay slot's point of view.
///
/// Returns `(successors, call_roots)`: `successors` are where execution
/// continues after the delay slot (a call is abstracted as returning, so
/// its successor is the return address), `call_roots` are callee entry
/// points to analyze as separate roots. `jr`/`jalr` targets are unknown;
/// `jr` ends the walk and `jalr` continues at the return address.
fn transfer_targets(inst: Instruction, at: u32, slot: u32) -> (Vec<u32>, Vec<u32>) {
    use Instruction::*;
    let fall = slot.wrapping_add(4);
    match inst {
        // `beq r, r, t` is the unconditional-branch idiom (`b t`); the
        // not-taken edge does not exist. Symmetrically `bne r, r, t` never
        // transfers.
        Beq { rs, rt, imm } if rs == rt => (vec![branch_target(at, imm)], Vec::new()),
        Bne { rs, rt, imm } if rs == rt => {
            let _ = imm;
            (vec![fall], Vec::new())
        }
        Beq { imm, .. }
        | Bne { imm, .. }
        | Blez { imm, .. }
        | Bgtz { imm, .. }
        | Bltz { imm, .. }
        | Bgez { imm, .. } => (vec![branch_target(at, imm), fall], Vec::new()),
        Bltzal { imm, .. } | Bgezal { imm, .. } => (vec![fall], vec![branch_target(at, imm)]),
        J { target } => (vec![jump_target(at, target)], Vec::new()),
        Jal { target } => (vec![fall], vec![jump_target(at, target)]),
        Jalr { .. } => (vec![fall], Vec::new()),
        Jr { .. } => (Vec::new(), Vec::new()),
        _ => (Vec::new(), Vec::new()),
    }
}

impl Cfg {
    /// Walks `prog` from the configured entry and extra roots, decoding
    /// every reachable word. Unreachable or undecodable words become
    /// [`Lint::RunsOffImage`] / [`Lint::Undecodable`] findings.
    pub fn build(prog: &Program, config: &VerifyConfig, report: &mut Report) -> Cfg {
        let mut cfg = Cfg::default();
        let mut work: VecDeque<(u32, Option<u32>)> = VecDeque::new();
        let mut queued: BTreeSet<(u32, Option<u32>)> = BTreeSet::new();
        let mut off_image: BTreeSet<u32> = BTreeSet::new();

        let push = |work: &mut VecDeque<(u32, Option<u32>)>,
                    queued: &mut BTreeSet<(u32, Option<u32>)>,
                    item: (u32, Option<u32>)| {
            if queued.insert(item) {
                work.push_back(item);
            }
        };

        push(&mut work, &mut queued, (config.entry, None));
        for &root in &config.extra_roots {
            push(&mut work, &mut queued, (root, None));
        }

        while let Some((addr, owner)) = work.pop_front() {
            let Some(word) = prog.word_at(addr) else {
                if off_image.insert(addr) {
                    report.findings.push(Finding::new(
                        prog,
                        Lint::RunsOffImage,
                        addr,
                        format!("execution reaches {addr:#010x}, outside the assembled image"),
                    ));
                }
                continue;
            };
            let inst = match decode(word) {
                Ok(inst) => inst,
                Err(_) => {
                    report.findings.push(Finding::new(
                        prog,
                        Lint::Undecodable,
                        addr,
                        format!("reachable word {word:#010x} does not decode"),
                    ));
                    cfg.nodes.entry(addr).or_insert(Node {
                        inst: Instruction::NOP,
                        succs: Vec::new(),
                        delay_of: owner,
                    });
                    continue;
                }
            };

            let (succs, roots) = match owner {
                Some(owner_addr) => {
                    // Delay slot: execution continues wherever the owning
                    // transfer goes, regardless of what this instruction is.
                    let owner_inst = cfg
                        .nodes
                        .get(&owner_addr)
                        .map(|n| n.inst)
                        .unwrap_or(Instruction::NOP);
                    transfer_targets(owner_inst, owner_addr, addr)
                }
                None if inst.is_control_transfer() => {
                    // The transfer itself only reaches its delay slot; the
                    // slot node carries the outgoing edges.
                    (vec![addr.wrapping_add(4)], Vec::new())
                }
                None => match inst {
                    Instruction::Syscall { .. } | Instruction::Break { .. } => {
                        if config.syscalls_return {
                            (vec![addr.wrapping_add(4)], Vec::new())
                        } else {
                            (Vec::new(), Vec::new())
                        }
                    }
                    // Terminators: control leaves the analyzed code.
                    Instruction::Hcall { .. } | Instruction::Xpcu => (Vec::new(), Vec::new()),
                    _ => (vec![addr.wrapping_add(4)], Vec::new()),
                },
            };

            let next_owner = if owner.is_none() && inst.is_control_transfer() {
                Some(addr)
            } else {
                None
            };
            for &s in &succs {
                push(&mut work, &mut queued, (s, next_owner));
            }
            for &r in &roots {
                push(&mut work, &mut queued, (r, None));
            }

            let node = cfg.nodes.entry(addr).or_insert(Node {
                inst,
                succs: Vec::new(),
                delay_of: None,
            });
            for s in succs {
                if !node.succs.contains(&s) {
                    node.succs.push(s);
                }
            }
            if owner.is_some() {
                node.delay_of = owner;
            }
        }
        cfg
    }

    /// Number of reachable instructions.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no instruction was reachable.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node at `addr`, if reachable.
    pub fn node(&self, addr: u32) -> Option<&Node> {
        self.nodes.get(&addr)
    }

    /// Iterates reachable `(address, node)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Node)> {
        self.nodes.iter().map(|(&a, n)| (a, n))
    }

    /// Whether the node at `addr` is the delay slot of a `jr` whose slot
    /// holds an `rfe` — the vector-to-user exit of a first-level handler.
    pub fn is_vector_exit(&self, addr: u32) -> bool {
        let Some(node) = self.nodes.get(&addr) else {
            return false;
        };
        if node.inst != Instruction::Rfe {
            return false;
        }
        node.delay_of
            .and_then(|o| self.nodes.get(&o))
            .is_some_and(|o| matches!(o.inst, Instruction::Jr { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efex_mips::asm::assemble;

    fn graph(src: &str, config: &VerifyConfig) -> (Cfg, Report) {
        let prog = assemble(src).expect("fixture assembles");
        let mut report = Report::new();
        let cfg = Cfg::build(&prog, config, &mut report);
        (cfg, report)
    }

    #[test]
    fn delay_slot_carries_branch_targets() {
        let src = "
.org 0x1000
start:
    beq $t0, $t1, out
    nop
    addiu $t2, $t2, 1
out:
    jr $ra
    nop
";
        let (cfg, report) = graph(src, &VerifyConfig::hazards_only(0x1000));
        assert!(report.is_clean(), "{}", report.render());
        // The branch reaches only its slot; the slot fans out.
        assert_eq!(cfg.node(0x1000).unwrap().succs, vec![0x1004]);
        let slot = cfg.node(0x1004).unwrap();
        assert_eq!(slot.delay_of, Some(0x1000));
        assert_eq!(slot.succs, vec![0x100c, 0x1008]);
        // jr's slot has no successors: the walk ends there.
        assert!(cfg.node(0x1010).unwrap().succs.is_empty());
        assert_eq!(cfg.len(), 5);
    }

    #[test]
    fn unconditional_beq_has_no_fallthrough() {
        let src = "
.org 0x1000
start:
    b over
    nop
    break 0        # dead: must not be reached
over:
    jr $ra
    nop
";
        let (cfg, report) = graph(src, &VerifyConfig::hazards_only(0x1000));
        assert!(report.is_clean());
        assert_eq!(cfg.node(0x1004).unwrap().succs, vec![0x100c]);
        assert!(cfg.node(0x1008).is_none(), "dead code must stay unwalked");
    }

    #[test]
    fn jal_returns_and_roots_callee() {
        let src = "
.org 0x1000
start:
    jal callee
    nop
    jr $ra
    nop
callee:
    jr $ra
    nop
";
        let (cfg, report) = graph(src, &VerifyConfig::hazards_only(0x1000));
        assert!(report.is_clean());
        // The call's slot falls through to the return point...
        assert_eq!(cfg.node(0x1004).unwrap().succs, vec![0x1008]);
        // ...and the callee was walked as a root.
        assert!(cfg.node(0x1010).is_some());
    }

    #[test]
    fn running_off_image_is_reported() {
        let src = "
.org 0x1000
start:
    addiu $t0, $t0, 1
";
        let (cfg, report) = graph(src, &VerifyConfig::hazards_only(0x1000));
        assert_eq!(cfg.len(), 1);
        let finds: Vec<_> = report.with_lint(Lint::RunsOffImage).collect();
        assert_eq!(finds.len(), 1);
        assert_eq!(finds[0].addr, 0x1004);
    }

    #[test]
    fn syscall_termination_is_configurable() {
        let src = "
.org 0x1000
start:
    syscall
    jr $ra
    nop
";
        let mut config = VerifyConfig::hazards_only(0x1000);
        let (cfg, report) = graph(src, &config);
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(cfg.len(), 3);
        config.syscalls_return = false;
        let (cfg, report) = graph(src, &config);
        assert!(report.is_clean());
        assert_eq!(cfg.len(), 1, "noreturn syscall must end the walk");
    }

    #[test]
    fn vector_exit_is_jr_with_rfe_slot() {
        let src = "
.org 0x1000
start:
    jr $k0
    rfe
";
        let (cfg, report) = graph(src, &VerifyConfig::hazards_only(0x1000));
        assert!(report.is_clean());
        assert!(cfg.is_vector_exit(0x1004));
        assert!(!cfg.is_vector_exit(0x1000));
        assert!(!cfg.is_empty());
    }
}
