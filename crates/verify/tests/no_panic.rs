//! Robustness fuzzing: random well-formed programs must never panic the
//! analyzer.
//!
//! The CFG builder, the abstract interpreter, and the symbolic explorer
//! all run over *adversarial* guest code — the whole point of the gate is
//! to reject broken handlers with findings, so the analyses themselves
//! must stay total: arbitrary (decodable) instruction sequences may
//! produce any number of findings but never a panic, overflow, or hang.
//!
//! The instruction strategy mirrors the canonical-constructor generators
//! seeded alongside the `efex-mips` round-trip suites
//! (`crates/mips/tests/roundtrip.rs`): every instruction the assembler can
//! produce, with full-range operands.

use efex_mips::asm::assemble;
use efex_mips::disasm::disassemble_at;
use efex_mips::exception::ExcCode;
use efex_mips::isa::{Instruction, Reg, TlbProtOp};
use efex_verify::interproc::Images;
use efex_verify::symex::{
    explore, CommModel, DeliveryVariant, Depth, EntryKind, HostModel, Scenario, SymexConfig,
    UareaModel, UareaWord,
};
use efex_verify::VerifyConfig;
use proptest::prelude::*;

/// Where the fuzzed image assembles: the general exception vector, so the
/// symbolic scenarios enter it the way the kernel image is entered.
const BASE: u32 = 0x8000_0080;

fn arb_reg() -> BoxedStrategy<Reg> {
    (0u8..32).prop_map(|n| Reg::new(n).unwrap()).boxed()
}

fn arb_prot_op() -> impl Strategy<Value = TlbProtOp> {
    prop_oneof![
        Just(TlbProtOp::WriteProtect),
        Just(TlbProtOp::WriteEnable),
        Just(TlbProtOp::ProtectAll),
        Just(TlbProtOp::ReadEnable),
    ]
}

/// Every canonically-constructed instruction (mirrors
/// `crates/mips/tests/roundtrip.rs`).
fn arb_instruction() -> impl Strategy<Value = Instruction> {
    use Instruction::*;
    let r3 = (arb_reg(), arb_reg(), arb_reg());
    prop_oneof![
        (arb_reg(), arb_reg(), 0u8..32).prop_map(|(rd, rt, shamt)| Sll { rd, rt, shamt }),
        (arb_reg(), arb_reg(), 0u8..32).prop_map(|(rd, rt, shamt)| Srl { rd, rt, shamt }),
        (arb_reg(), arb_reg(), 0u8..32).prop_map(|(rd, rt, shamt)| Sra { rd, rt, shamt }),
        r3.clone().prop_map(|(rd, rs, rt)| Sllv { rd, rt, rs }),
        r3.clone().prop_map(|(rd, rs, rt)| Srlv { rd, rt, rs }),
        r3.clone().prop_map(|(rd, rs, rt)| Srav { rd, rt, rs }),
        r3.clone().prop_map(|(rd, rs, rt)| Add { rd, rs, rt }),
        r3.clone().prop_map(|(rd, rs, rt)| Addu { rd, rs, rt }),
        r3.clone().prop_map(|(rd, rs, rt)| Sub { rd, rs, rt }),
        r3.clone().prop_map(|(rd, rs, rt)| Subu { rd, rs, rt }),
        r3.clone().prop_map(|(rd, rs, rt)| And { rd, rs, rt }),
        r3.clone().prop_map(|(rd, rs, rt)| Or { rd, rs, rt }),
        r3.clone().prop_map(|(rd, rs, rt)| Xor { rd, rs, rt }),
        r3.clone().prop_map(|(rd, rs, rt)| Nor { rd, rs, rt }),
        r3.clone().prop_map(|(rd, rs, rt)| Slt { rd, rs, rt }),
        r3.prop_map(|(rd, rs, rt)| Sltu { rd, rs, rt }),
        (arb_reg(), arb_reg()).prop_map(|(rs, rt)| Mult { rs, rt }),
        (arb_reg(), arb_reg()).prop_map(|(rs, rt)| Multu { rs, rt }),
        (arb_reg(), arb_reg()).prop_map(|(rs, rt)| Div { rs, rt }),
        (arb_reg(), arb_reg()).prop_map(|(rs, rt)| Divu { rs, rt }),
        arb_reg().prop_map(|rd| Mfhi { rd }),
        arb_reg().prop_map(|rd| Mflo { rd }),
        arb_reg().prop_map(|rs| Mthi { rs }),
        arb_reg().prop_map(|rs| Mtlo { rs }),
        arb_reg().prop_map(|rs| Jr { rs }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs)| Jalr { rd, rs }),
        (0u32..0xf_ffff).prop_map(|code| Syscall { code }),
        (0u32..0xf_ffff).prop_map(|code| Break { code }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rs, rt, imm)| Beq { rs, rt, imm }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rs, rt, imm)| Bne { rs, rt, imm }),
        (arb_reg(), any::<i16>()).prop_map(|(rs, imm)| Blez { rs, imm }),
        (arb_reg(), any::<i16>()).prop_map(|(rs, imm)| Bgtz { rs, imm }),
        (arb_reg(), any::<i16>()).prop_map(|(rs, imm)| Bltz { rs, imm }),
        (arb_reg(), any::<i16>()).prop_map(|(rs, imm)| Bgez { rs, imm }),
        (arb_reg(), any::<i16>()).prop_map(|(rs, imm)| Bltzal { rs, imm }),
        (arb_reg(), any::<i16>()).prop_map(|(rs, imm)| Bgezal { rs, imm }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rt, rs, imm)| Addi { rt, rs, imm }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rt, rs, imm)| Addiu { rt, rs, imm }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rt, rs, imm)| Slti { rt, rs, imm }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rt, rs, imm)| Sltiu { rt, rs, imm }),
        (arb_reg(), arb_reg(), any::<u16>()).prop_map(|(rt, rs, imm)| Andi { rt, rs, imm }),
        (arb_reg(), arb_reg(), any::<u16>()).prop_map(|(rt, rs, imm)| Ori { rt, rs, imm }),
        (arb_reg(), arb_reg(), any::<u16>()).prop_map(|(rt, rs, imm)| Xori { rt, rs, imm }),
        (arb_reg(), any::<u16>()).prop_map(|(rt, imm)| Lui { rt, imm }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rt, base, imm)| Lb { rt, base, imm }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rt, base, imm)| Lbu { rt, base, imm }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rt, base, imm)| Lh { rt, base, imm }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rt, base, imm)| Lhu { rt, base, imm }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rt, base, imm)| Lw { rt, base, imm }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rt, base, imm)| Sb { rt, base, imm }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rt, base, imm)| Sh { rt, base, imm }),
        (arb_reg(), arb_reg(), any::<i16>()).prop_map(|(rt, base, imm)| Sw { rt, base, imm }),
        (0u32..0x03ff_ffff).prop_map(|target| J { target }),
        (0u32..0x03ff_ffff).prop_map(|target| Jal { target }),
        (arb_reg(), 0u8..32).prop_map(|(rt, rd)| Mfc0 { rt, rd }),
        (arb_reg(), 0u8..32).prop_map(|(rt, rd)| Mtc0 { rt, rd }),
        Just(Tlbr),
        Just(Tlbwi),
        Just(Tlbwr),
        Just(Tlbp),
        Just(Rfe),
        Just(Xpcu),
        (arb_reg(), arb_prot_op()).prop_map(|(rs, op)| Utlbp { rs, op }),
        (0u32..0x03ff_ffff).prop_map(|code| Hcall { code }),
    ]
}

/// Renders a random instruction sequence to source and assembles it — a
/// *well-formed* program (every word decodes) with arbitrary control flow.
fn arb_program() -> impl Strategy<Value = String> {
    proptest::collection::vec(arb_instruction(), 1..48).prop_map(|insts| {
        let mut src = format!(".org {BASE:#x}\n");
        let mut addr = BASE;
        for inst in insts {
            src.push_str(&disassemble_at(inst, addr, None));
            src.push('\n');
            addr = addr.wrapping_add(4);
        }
        src
    })
}

/// A symbolic-engine configuration exercising every model feature against
/// the fuzzed image: u-area words, comm aliasing, host boundaries, refill
/// re-entry.
fn fuzz_config() -> SymexConfig {
    SymexConfig {
        general_vector: BASE,
        utlb_vector: None,
        exception_entry_cycles: 30,
        user_vector_entry_cycles: 4,
        uarea: UareaModel {
            base: 0x8000_0a00,
            len: 0x200,
            words: [
                (0x0, UareaWord::Known(0xffff_ffff)),
                (0x4, UareaWord::Handler),
                (0x8, UareaWord::CommBase),
                (0xc, UareaWord::Known(0)),
            ]
            .into_iter()
            .collect(),
        },
        comm: CommModel {
            user_base: 0x7ffe_0000,
            kseg0_base: Some(0x8040_0000),
            page_len: 4096,
            frame_size: 0x20,
            epc_slot: 0,
            slot_owners: vec![(0xc, Reg::AT), (0x10, Reg::A0), (0x14, Reg::A1)],
        },
        handler: None,
        protocol_saved: vec![Reg::AT, Reg::A0, Reg::A1],
        documented_windows: vec![],
        host: HostModel {
            refill_cycles: 12,
            fast_tlb: (230, 330),
            standard: (1200, 1200),
            standard_tlb_extra: 450,
            sigreturn: (700, 700),
            other_syscall: (300, 300),
            standard_resume: None,
        },
        max_refills: 2,
        unroll_limit: 12,
        max_paths: 64,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The CFG builder and every classic pass are total over well-formed
    /// programs: findings, not panics.
    #[test]
    fn analyze_never_panics(src in arb_program()) {
        let prog = assemble(&src).expect("generated source must assemble");
        let config = VerifyConfig::hazards_only(prog.entry());
        let _ = efex_verify::analyze(&prog, &config).unwrap();
    }

    /// The symbolic explorer is total over well-formed programs, for both
    /// delivery variants and both exploration depths.
    #[test]
    fn symex_never_panics(src in arb_program()) {
        let prog = assemble(&src).expect("generated source must assemble");
        let images = Images::new(vec![("fuzz", &prog)]);
        let config = fuzz_config();
        let scenarios = vec![
            Scenario {
                label: "fuzz/breakpoint/direct".into(),
                class: ExcCode::Breakpoint,
                variant: DeliveryVariant::Direct,
                entry: EntryKind::KernelVector,
                depth: Depth::KernelOnly,
                fault_cost: 1,
                measure_to: None,
                measure_return_from: None,
                return_may_refill: false,
            },
            Scenario {
                label: "fuzz/tlbmod/refill".into(),
                class: ExcCode::TlbMod,
                variant: DeliveryVariant::Refill,
                entry: EntryKind::KernelVector,
                depth: Depth::Deep,
                fault_cost: 2,
                measure_to: None,
                measure_return_from: None,
                return_may_refill: true,
            },
        ];
        let report = explore(&images, &config, &scenarios);
        // Any number of findings is acceptable; the report must simply be
        // internally consistent.
        prop_assert_eq!(report.scenarios.len(), 2);
    }
}
