//! Fixture tests: one deliberately-broken handler per lint, asserting the
//! exact diagnostic (code, site, and message), plus a clean toy handler
//! proving the full contract passes on well-formed code.

use efex_mips::asm::{assemble, Program};
use efex_mips::isa::Reg;
use efex_verify::{analyze, Checks, Lint, PinnedRegion, VerifyConfig};

/// A toy communication page: pinned at a fixed kseg0 address.
const COMM_BASE: u32 = 0x8000_7000;

/// Full-contract config over a toy handler: one pinned comm page that
/// doubles as the save frame, `$k0`/`$k1` kernel-reserved.
fn full_config(prog: &Program) -> VerifyConfig {
    VerifyConfig {
        entry: prog.entry(),
        extra_roots: Vec::new(),
        phases: Vec::new(),
        end: None,
        instruction_budget: None,
        reserved: vec![Reg::K0, Reg::K1],
        critical_until: None,
        // `$at` is frame-saved as user scratch in every toy fixture.
        protocol_saved: vec![Reg::AT],
        pinned: vec![PinnedRegion {
            name: "comm".into(),
            base: Some(COMM_BASE),
            len: 0x1000,
        }],
        pointer_slots: Vec::new(),
        save_region: Some(0),
        syscalls_return: true,
        checks: Checks::all(),
    }
}

fn analyze_full(src: &str) -> (Program, efex_verify::Report) {
    let prog = assemble(src).expect("fixture assembles");
    let config = full_config(&prog);
    let report = analyze(&prog, &config).expect("config is consistent");
    (prog, report)
}

fn analyze_hazards(src: &str) -> efex_verify::Report {
    let prog = assemble(src).expect("fixture assembles");
    let config = VerifyConfig::hazards_only(prog.entry());
    analyze(&prog, &config).expect("config is consistent")
}

/// The only finding in `report`, asserted to be of kind `lint`.
fn sole_finding(report: &efex_verify::Report, lint: Lint) -> &efex_verify::Finding {
    assert_eq!(
        report.findings.len(),
        1,
        "expected exactly one finding, got:\n{}",
        report.render()
    );
    let f = &report.findings[0];
    assert_eq!(f.lint, lint, "wrong lint kind:\n{}", report.render());
    f
}

/// A well-formed toy handler passes the full contract with zero findings.
#[test]
fn clean_toy_handler() {
    let (_, report) = analyze_full(
        r#"
        .org 0x80000080
        handler:
            lui  $k0, 0x8000
            ori  $k0, $k0, 0x7000
            sw   $at, 0($k0)
            sw   $a0, 4($k0)
            lui  $a0, 0x8000
            ori  $a0, $a0, 0x2000
            jr   $a0
            rfe
    "#,
    );
    assert!(
        report.is_clean(),
        "unexpected findings:\n{}",
        report.render()
    );
    let fp = report.fast_path.expect("vector exit found");
    assert_eq!(fp.total_instructions, 8);
}

#[test]
fn branch_in_delay_slot() {
    let report = analyze_hazards(
        r#"
        .org 0x80002000
        entry:
            j    out
            j    out
        out:
            jr   $ra
            nop
    "#,
    );
    let f = sole_finding(&report, Lint::BranchInDelaySlot);
    assert_eq!(f.addr, 0x8000_2004);
    assert_eq!(f.location, "entry+0x4");
    assert_eq!(f.lint.code(), "delay-slot-branch");
    assert!(
        f.message
            .contains("delay slot of the transfer at 0x80002000"),
        "message: {}",
        f.message
    );
}

#[test]
fn load_use_in_delay_slot() {
    let report = analyze_hazards(
        r#"
        .org 0x80002000
        entry:
            bnez $t0, target
            lw   $t1, 0($t2)
        target:
            addu $t3, $t1, $t1
            jr   $ra
            nop
    "#,
    );
    let f = sole_finding(&report, Lint::LoadUseInDelaySlot);
    assert_eq!(f.addr, 0x8000_2004);
    assert_eq!(f.lint.code(), "delay-slot-load-use");
    assert!(
        f.message.contains("load into $t1")
            && f.message
                .contains("reads $t1 before the load delay expires"),
        "message: {}",
        f.message
    );
}

#[test]
fn misplaced_rfe() {
    let report = analyze_hazards(
        r#"
        .org 0x80002000
        entry:
            rfe
            jr   $ra
            nop
    "#,
    );
    let f = sole_finding(&report, Lint::MisplacedRfe);
    assert_eq!(f.addr, 0x8000_2000);
    assert_eq!(f.location, "entry");
    assert_eq!(f.lint.code(), "misplaced-rfe");
}

#[test]
fn trapping_arith_on_critical_path() {
    let prog = assemble(
        r#"
        .org 0x80002000
        entry:
            add  $t0, $t1, $t2
            jr   $ra
            nop
    "#,
    )
    .unwrap();
    let mut config = VerifyConfig::hazards_only(prog.entry());
    config.critical_until = Some(prog.entry() + 4);
    let report = analyze(&prog, &config).unwrap();
    let f = sole_finding(&report, Lint::TrappingArithOnCriticalPath);
    assert_eq!(f.addr, 0x8000_2000);
    assert_eq!(f.lint.code(), "critical-path-trap");
    assert!(
        f.message.contains("use the unsigned form"),
        "message: {}",
        f.message
    );
    // The unsigned form on the same path is clean.
    config.critical_until = Some(prog.entry() + 4);
    let fixed = assemble(
        r#"
        .org 0x80002000
        entry:
            addu $t0, $t1, $t2
            jr   $ra
            nop
    "#,
    )
    .unwrap();
    assert!(analyze(&fixed, &config).unwrap().is_clean());
}

#[test]
fn unsaved_clobber() {
    // `$a0` is clobbered (by `lui`) but never saved to the frame first.
    let (_, report) = analyze_full(
        r#"
        .org 0x80000080
        handler:
            lui  $k0, 0x8000
            ori  $k0, $k0, 0x7000
            sw   $at, 0($k0)
            lui  $a0, 0x8000
            ori  $a0, $a0, 0x2000
            jr   $a0
            rfe
    "#,
    );
    let f = sole_finding(&report, Lint::UnsavedClobber);
    assert_eq!(f.addr, 0x8000_0080 + 3 * 4, "site is the first write");
    assert_eq!(f.location, "handler+0xc");
    assert_eq!(f.lint.code(), "unsaved-clobber");
    assert!(
        f.message.contains("$a0 is clobbered but never saved"),
        "message: {}",
        f.message
    );
}

#[test]
fn save_after_clobber_is_not_a_save() {
    // The store of `$a0` happens *after* `$a0` was overwritten — it stores
    // the handler's value, not the user's, so the clobber is still unsaved
    // (and the store itself is not reported as a dead save).
    let (_, report) = analyze_full(
        r#"
        .org 0x80000080
        handler:
            lui  $k0, 0x8000
            ori  $k0, $k0, 0x7000
            sw   $at, 0($k0)
            lui  $a0, 0x8000
            sw   $a0, 4($k0)
            ori  $a0, $a0, 0x2000
            jr   $a0
            rfe
    "#,
    );
    let f = sole_finding(&report, Lint::UnsavedClobber);
    assert!(f.message.contains("$a0"), "message: {}", f.message);
}

#[test]
fn dead_save() {
    // `$s0` is saved but the handler never touches it, and no protocol
    // promises it to the user as scratch.
    let (_, report) = analyze_full(
        r#"
        .org 0x80000080
        handler:
            lui  $k0, 0x8000
            ori  $k0, $k0, 0x7000
            sw   $at, 0($k0)
            sw   $a0, 4($k0)
            sw   $s0, 8($k0)
            lui  $a0, 0x8000
            ori  $a0, $a0, 0x2000
            jr   $a0
            rfe
    "#,
    );
    let f = sole_finding(&report, Lint::DeadSave);
    assert_eq!(f.addr, 0x8000_0080 + 4 * 4);
    assert_eq!(f.location, "handler+0x10");
    assert_eq!(f.lint.code(), "dead-save");
    assert!(
        f.message.contains("$s0 is saved") && f.message.contains("dead store"),
        "message: {}",
        f.message
    );
}

#[test]
fn missing_protocol_save() {
    let prog = assemble(
        r#"
        .org 0x80000080
        handler:
            lui  $k0, 0x8000
            ori  $k0, $k0, 0x7000
            sw   $at, 0($k0)
            sw   $a0, 4($k0)
            lui  $a0, 0x8000
            ori  $a0, $a0, 0x2000
            jr   $a0
            rfe
    "#,
    )
    .unwrap();
    let mut config = full_config(&prog);
    config.protocol_saved = vec![Reg::AT, Reg::A0, Reg::A1];
    let report = analyze(&prog, &config).unwrap();
    let f = sole_finding(&report, Lint::MissingProtocolSave);
    assert_eq!(f.addr, prog.entry());
    assert_eq!(f.lint.code(), "missing-protocol-save");
    assert!(f.message.contains("promises $a1"), "message: {}", f.message);
}

#[test]
fn over_budget_path() {
    let prog = assemble(
        r#"
        .org 0x80000080
        handler:
            lui  $k0, 0x8000
            ori  $k0, $k0, 0x7000
            sw   $at, 0($k0)
            sw   $a0, 4($k0)
            lui  $a0, 0x8000
            ori  $a0, $a0, 0x2000
            jr   $a0
            rfe
    "#,
    )
    .unwrap();
    let mut config = full_config(&prog);
    config.instruction_budget = Some(4);
    let report = analyze(&prog, &config).unwrap();
    let f = sole_finding(&report, Lint::OverBudgetPath);
    assert_eq!(f.addr, prog.entry());
    assert_eq!(f.lint.code(), "over-budget-path");
    assert!(
        f.message.contains("runs 8 instructions, over the") && f.message.contains("budget of 4"),
        "message: {}",
        f.message
    );
}

#[test]
fn unbounded_path() {
    let prog = assemble(
        r#"
        .org 0x80002000
        entry:
        loop:
            addiu $t0, $t0, 1
            bnez  $t0, loop
            nop
            jr    $ra
            nop
    "#,
    )
    .unwrap();
    let mut config = VerifyConfig::hazards_only(prog.entry());
    config.checks.bounds = true;
    let report = analyze(&prog, &config).unwrap();
    let f = sole_finding(&report, Lint::UnboundedPath);
    assert_eq!(f.addr, 0x8000_2000, "cycle reported at the revisited head");
    assert_eq!(f.lint.code(), "unbounded-path");
}

#[test]
fn unpinned_memory_reference() {
    // `$t1` is never defined, so the store address is unprovable.
    let prog = assemble(
        r#"
        .org 0x80000080
        handler:
            sw   $zero, 0($t1)
            jr   $k0
            rfe
    "#,
    )
    .unwrap();
    let mut config = full_config(&prog);
    config.protocol_saved.clear();
    let report = analyze(&prog, &config).unwrap();
    let f = sole_finding(&report, Lint::UnpinnedMemoryReference);
    assert_eq!(f.addr, 0x8000_0080);
    assert_eq!(f.lint.code(), "unpinned-memory-reference");
    assert!(
        f.message.contains("cannot prove this 4-byte access"),
        "message: {}",
        f.message
    );
}

#[test]
fn out_of_region_offset_is_unpinned() {
    // The base register is a proven comm-page pointer, but the offset runs
    // past the pinned region's end.
    let prog = assemble(
        r#"
        .org 0x80000080
        handler:
            lui  $k0, 0x8000
            ori  $k0, $k0, 0x7ffc
            sw   $at, 8($k0)
            jr   $k1
            rfe
    "#,
    )
    .unwrap();
    let mut config = full_config(&prog);
    config.protocol_saved.clear();
    let report = analyze(&prog, &config).unwrap();
    let f = sole_finding(&report, Lint::UnpinnedMemoryReference);
    assert_eq!(f.location, "handler+0x8");
}

#[test]
fn runs_off_image() {
    let report = analyze_hazards(
        r#"
        .org 0x80002000
        entry:
            addiu $t0, $t0, 1
    "#,
    );
    let f = sole_finding(&report, Lint::RunsOffImage);
    assert_eq!(
        f.addr, 0x8000_2004,
        "reported at the first off-image address"
    );
    assert_eq!(f.lint.code(), "runs-off-image");
}

#[test]
fn undecodable_word() {
    let report = analyze_hazards(
        r#"
        .org 0x80002000
        entry:
            j    bad
            nop
        bad:
            .word 0xffffffff
    "#,
    );
    assert_eq!(report.with_lint(Lint::Undecodable).count(), 1);
    let f = report.with_lint(Lint::Undecodable).next().unwrap();
    assert_eq!(f.addr, 0x8000_2008);
    assert_eq!(f.location, "bad");
    assert_eq!(f.lint.code(), "undecodable");
}
