//! The full injection matrix, as CI runs it: every scenario under the
//! default seed, each executed twice with observations compared
//! field-for-field. A second whole-matrix pass must reproduce the first —
//! determinism of the determinism check itself.

use efex_inject::{run_all, scenarios, Expectation, DEFAULT_SEED};

#[test]
fn full_matrix_passes_under_the_default_seed() {
    let reports = run_all(DEFAULT_SEED).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(reports.len(), scenarios().len());
    // At least one scenario per specified-behavior class, or the matrix
    // lost coverage.
    for class in [
        Expectation::BitExact,
        Expectation::DegradedRecovery,
        Expectation::Killed,
    ] {
        assert!(
            reports.iter().any(|r| r.expect == class),
            "no scenario left in class {class}"
        );
    }
}

#[test]
fn matrix_is_reproducible_across_whole_passes() {
    let first = run_all(DEFAULT_SEED).unwrap_or_else(|e| panic!("{e}"));
    let second = run_all(DEFAULT_SEED).unwrap_or_else(|e| panic!("{e}"));
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.observed, b.observed, "{} drifted between passes", a.id);
    }
}

#[test]
fn seeded_perturbations_follow_the_seed() {
    // Scenarios that draw perturbation values from the seed still pass
    // under a different matrix seed (different wild addresses, same
    // specified behavior).
    let reports = run_all(0xdead_beef).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(reports.len(), scenarios().len());
}
