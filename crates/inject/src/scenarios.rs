//! The scenario registry: every entry perturbs one delivery invariant and
//! asserts the specified result. Scenario programs are assembled fresh per
//! run; any value a perturbation needs (corruption words, wild addresses)
//! is drawn from the seeded [`Xorshift`] so a matrix run replays exactly.

use crate::{Expectation, Observed, Scenario, Xorshift};
use efex_core::{
    DeliveryPath, GuestMem, HandlerAction, HandlerSpec, HostProcess, Prot, Protection,
};
use efex_mips::ExcCode;
use efex_simos::kernel::{InjectAction, Kernel, KernelConfig, RunOutcome};
use efex_trace::Snapshot;

pub(crate) static REGISTRY: &[Scenario] = &[
    Scenario {
        id: "subpage-taken-branch-slot",
        summary: "store in a taken branch's delay slot is emulated and resumes at the target",
        expect: Expectation::BitExact,
        run: subpage_taken_branch_slot,
    },
    Scenario {
        id: "subpage-untaken-branch-slot",
        summary: "store in an untaken branch's delay slot is emulated and falls through",
        expect: Expectation::BitExact,
        run: subpage_untaken_branch_slot,
    },
    Scenario {
        id: "subpage-jr-slot",
        summary: "store in a jr delay slot resumes through the register value",
        expect: Expectation::BitExact,
        run: subpage_jr_slot,
    },
    Scenario {
        id: "subpage-branch-cross-page",
        summary: "emulated branch target on another text page resumes via the refill path",
        expect: Expectation::BitExact,
        run: subpage_branch_cross_page,
    },
    Scenario {
        id: "subpage-jalr-self-link",
        summary: "jalr rd==rs in the faulting shape is unpredictable: specified kill + diagnostic",
        expect: Expectation::Killed,
        run: subpage_jalr_self_link,
    },
    Scenario {
        id: "unaligned-jr-slot-clobber",
        summary: "unaligned load in a jr slot writing the jump register resumes at the OLD target",
        expect: Expectation::BitExact,
        run: unaligned_jr_slot_clobber,
    },
    Scenario {
        id: "handler-return-slot-fault",
        summary: "fault in the user handler's return-jump delay slot is emulated, not redelivered",
        expect: Expectation::BitExact,
        run: handler_return_slot_fault,
    },
    Scenario {
        id: "nested-unix-signals",
        summary: "handler re-faults mid-delivery; inner sigcontext must not clobber the outer",
        expect: Expectation::BitExact,
        run: nested_unix_signals,
    },
    Scenario {
        id: "second-class-in-flight",
        summary: "breakpoint delivered while a TlbMod delivery is in flight uses a disjoint frame",
        expect: Expectation::BitExact,
        run: second_class_in_flight,
    },
    Scenario {
        id: "evict-handler-tlb",
        summary: "handler's TLB entry evicted mid-delivery; resume recovers through refill",
        expect: Expectation::BitExact,
        run: evict_handler_tlb,
    },
    Scenario {
        id: "evict-comm-before-save",
        summary: "comm page unpinned before the save; repair + Unix fallback (here: kill)",
        expect: Expectation::Killed,
        run: evict_comm_before_save,
    },
    Scenario {
        id: "evict-comm-breakpoint-window",
        summary: "comm page evicted after the guest save, before the handler's load; repaired",
        expect: Expectation::DegradedRecovery,
        run: evict_comm_breakpoint_window,
    },
    Scenario {
        id: "corrupt-comm-epc",
        summary: "saved EPC rewritten to a wild address between save and resume: specified kill",
        expect: Expectation::Killed,
        run: corrupt_comm_epc,
    },
    Scenario {
        id: "corrupt-comm-unused-word",
        summary: "concurrent rewrite of a frame word the handler never reads: bit-exact",
        expect: Expectation::BitExact,
        run: corrupt_comm_unused_word,
    },
    Scenario {
        id: "snapshot-mid-vulnerable-window",
        summary: "kernel snapshotted inside the save→handler window restores bit-exact",
        expect: Expectation::BitExact,
        run: snapshot_mid_vulnerable_window,
    },
    Scenario {
        id: "host-degraded-delivery",
        summary:
            "host delivery injected to fall back to Unix-signal costs, counted and snapshotted",
        expect: Expectation::DegradedRecovery,
        run: host_degraded_delivery,
    },
];

// ---------------------------------------------------------------------------
// Helpers

fn check<T: PartialEq + std::fmt::Debug>(what: &str, got: T, want: T) -> Result<(), String> {
    if got == want {
        Ok(())
    } else {
        Err(format!("{what}: got {got:?}, want {want:?}"))
    }
}

fn check_ge(what: &str, got: u64, min: u64) -> Result<(), String> {
    if got >= min {
        Ok(())
    } else {
        Err(format!("{what}: got {got}, want >= {min}"))
    }
}

fn observe(k: &Kernel, out: &RunOutcome) -> Observed {
    let stats = &k.process().stats;
    Observed {
        outcome: format!("{out:?}"),
        fast_delivered: stats.fast_delivered,
        signals_delivered: stats.signals_delivered,
        degraded_deliveries: stats.degraded_deliveries,
        subpage_emulations: stats.subpage_emulations,
        cycles: k.cycles(),
        diagnostic: k.last_diagnostic().map(str::to_owned),
    }
}

/// Boot, load, run; injections are queued by `prepare` before the run.
fn run_guest(
    cfg: KernelConfig,
    program: &str,
    prepare: impl FnOnce(&mut Kernel),
) -> Result<(Kernel, RunOutcome), String> {
    let mut k = Kernel::boot(cfg).map_err(|e| format!("boot: {e}"))?;
    let prog = k
        .load_user_program(program)
        .map_err(|e| format!("assemble/load: {e}"))?;
    let sp = k.setup_stack(8).map_err(|e| format!("stack: {e}"))?;
    k.exec(prog.entry(), sp);
    prepare(&mut k);
    let out = k.run_user(1_000_000).map_err(|e| format!("run: {e}"))?;
    Ok((k, out))
}

/// Common prologue for the subpage shapes: enable fast TLB exceptions, sbrk
/// a page into `$s1`, touch it, subpage-protect its first kilobyte.
const SUBPAGE_SETUP: &str = r#"
.org 0x00400000
main:
    li  $a0, 0x0e            # TlbMod | TlbLoad | TlbStore
    la  $a1, handler
    li  $a2, 0x7ffe0000
    li  $v0, 7               # uexc_enable
    syscall
    li  $a0, 4096
    li  $v0, 13              # sbrk
    syscall
    move $s1, $v0
    sw  $zero, 0($s1)        # resident
    move $a0, $s1
    li  $a1, 1024            # protect the first logical subpage only
    li  $a2, 1
    li  $v0, 11              # subpage_protect
    syscall
"#;

const SUBPAGE_HANDLER: &str = r#"
handler:
    lui  $k0, 0x7ffe
    lw   $k1, 0x20($k0)      # TlbMod frame EPC
    jr   $k1                 # page was amplified: retry succeeds
    nop
"#;

/// Program whose fast path delivers one TlbMod (write-protect) fault; the
/// handler skips the faulting store and the program exits 55.
const TLBMOD_FAST_PROGRAM: &str = r#"
.org 0x00400000
main:
    li  $a0, 0x02            # 1 << TlbMod
    la  $a1, fast_handler
    li  $a2, 0x7ffe0000
    li  $v0, 7               # uexc_enable
    syscall
    li  $a0, 8192
    li  $v0, 13              # sbrk
    syscall
    move $s1, $v0
    sw  $zero, 0($s1)        # resident + writable
    move $a0, $s1
    li  $a1, 4096
    li  $a2, 1               # PROT_READ
    li  $v0, 9               # uexc_protect
    syscall
    sw  $s1, 0($s1)          # TlbMod -> fast delivery
    li  $a0, 55
    li  $v0, 2
    syscall
    nop
fast_handler:
    li  $t0, 0x7ffe0000
    lw  $t1, 0x20($t0)       # TlbMod frame EPC
    addiu $t1, $t1, 4        # skip the store
    jr  $t1
    nop
"#;

// ---------------------------------------------------------------------------
// Branch-delay-slot emulation shapes (satellite audit, run as scenarios)

fn subpage_taken_branch_slot(_seed: u64) -> Result<Observed, String> {
    let program = format!(
        r#"{SUBPAGE_SETUP}
    li   $t0, 77
    li   $t1, 1
    bnez $t1, taken
    sw   $t0, 2048($s1)      # delay slot store, unprotected subpage
    li   $t0, 0              # (skipped)
taken:
    lw   $a0, 2048($s1)
    li   $v0, 2
    syscall
    nop
{SUBPAGE_HANDLER}"#
    );
    let (k, out) = run_guest(KernelConfig::default(), &program, |_| {})?;
    check("outcome", out, RunOutcome::Exited(77))?;
    check_ge(
        "subpage_emulations",
        k.process().stats.subpage_emulations,
        1,
    )?;
    Ok(observe(&k, &out))
}

fn subpage_untaken_branch_slot(_seed: u64) -> Result<Observed, String> {
    let program = format!(
        r#"{SUBPAGE_SETUP}
    li   $t0, 33
    beqz $s1, elsewhere      # never taken ($s1 is the heap page)
    sw   $t0, 2048($s1)
    lw   $a0, 2048($s1)
    li   $v0, 2
    syscall
    nop
elsewhere:
    li   $a0, 99
    li   $v0, 2
    syscall
    nop
{SUBPAGE_HANDLER}"#
    );
    let (k, out) = run_guest(KernelConfig::default(), &program, |_| {})?;
    check("outcome", out, RunOutcome::Exited(33))?;
    Ok(observe(&k, &out))
}

fn subpage_jr_slot(_seed: u64) -> Result<Observed, String> {
    let program = format!(
        r#"{SUBPAGE_SETUP}
    li   $t0, 88
    la   $t2, landing
    jr   $t2
    sw   $t0, 2048($s1)
    li   $t0, 0              # (skipped)
landing:
    lw   $a0, 2048($s1)
    li   $v0, 2
    syscall
    nop
{SUBPAGE_HANDLER}"#
    );
    let (k, out) = run_guest(KernelConfig::default(), &program, |_| {})?;
    check("outcome", out, RunOutcome::Exited(88))?;
    Ok(observe(&k, &out))
}

fn subpage_branch_cross_page(_seed: u64) -> Result<Observed, String> {
    let program = format!(
        r#"{SUBPAGE_SETUP}
    li   $t0, 61
    li   $t1, 1
    bnez $t1, far
    sw   $t0, 2048($s1)
    li   $t0, 0              # (skipped)
{SUBPAGE_HANDLER}
.org 0x00402000
far:
    lw   $a0, 2048($s1)
    li   $v0, 2
    syscall
    nop
"#
    );
    let (k, out) = run_guest(KernelConfig::default(), &program, |_| {})?;
    check("outcome", out, RunOutcome::Exited(61))?;
    Ok(observe(&k, &out))
}

fn subpage_jalr_self_link(_seed: u64) -> Result<Observed, String> {
    let program = format!(
        r#"{SUBPAGE_SETUP}
    li   $t0, 7
    la   $t1, after
    jalr $t1, $t1            # link write clobbers the jump register
    sw   $t0, 2048($s1)
after:
    li   $a0, 1
    li   $v0, 2
    syscall
    nop
{SUBPAGE_HANDLER}"#
    );
    let (k, out) = run_guest(KernelConfig::default(), &program, |_| {})?;
    check(
        "outcome",
        out,
        RunOutcome::Terminated(efex_simos::signals::Signal::Segv),
    )?;
    check("degraded", k.process().stats.degraded_deliveries, 1)?;
    let diag = k.last_diagnostic().unwrap_or_default().to_owned();
    if !diag.contains("unpredictable") {
        return Err(format!("diagnostic missing 'unpredictable': {diag:?}"));
    }
    Ok(observe(&k, &out))
}

fn unaligned_jr_slot_clobber(_seed: u64) -> Result<Observed, String> {
    // The emulated unaligned load writes the very register the jump reads;
    // the branch consumed the OLD value, so resume must go to the old
    // target while the register holds the freshly loaded word.
    let cfg = KernelConfig {
        fixup_unaligned: true,
        ..KernelConfig::default()
    };
    let program = r#"
.org 0x00400000
main:
    li   $a0, 8192
    li   $v0, 13             # sbrk
    syscall
    move $s1, $v0
    li   $t0, 0x00411223
    sw   $t0, 0($s1)
    sw   $t0, 4($s1)
    la   $t1, good
    jr   $t1
    lw   $t1, 2($s1)         # delay slot: unaligned load INTO $t1
    li   $a0, 1              # (skipped)
    li   $v0, 2
    syscall
    nop
good:
    srl  $a0, $t1, 24        # top byte of the loaded value
    li   $v0, 2
    syscall
    nop
"#;
    let (k, out) = run_guest(cfg, program, |_| {})?;
    check("outcome", out, RunOutcome::Exited(0x12))?;
    Ok(observe(&k, &out))
}

// ---------------------------------------------------------------------------
// Recursive-exception shapes

fn handler_return_slot_fault(_seed: u64) -> Result<Observed, String> {
    // The user handler's own return jump carries a store in its delay slot
    // that faults on a second, not-yet-amplified subpage-managed page. The
    // kernel must emulate both without re-delivering, and resume where the
    // handler's jump register pointed.
    let program = r#"
.org 0x00400000
main:
    li  $a0, 0x0e
    la  $a1, handler
    li  $a2, 0x7ffe0000
    li  $v0, 7               # uexc_enable
    syscall
    li  $a0, 8192
    li  $v0, 13              # sbrk: two pages
    syscall
    move $s1, $v0
    addiu $s2, $s1, 4096
    sw  $zero, 0($s1)
    sw  $zero, 0($s2)
    move $a0, $s1
    li  $a1, 1024
    li  $a2, 1
    li  $v0, 11              # subpage_protect page A
    syscall
    move $a0, $s2
    li  $a1, 1024
    li  $a2, 1
    li  $v0, 11              # subpage_protect page B
    syscall
    li  $t0, 7
    sw  $t0, 16($s1)         # protected subpage on page A -> delivered
    lw  $a0, 2048($s2)       # read back the handler's delay-slot store
    li  $v0, 2
    syscall
    nop
handler:
    lui $t8, 0x7ffe          # NOT $k0/$k1: the nested fault's first-level
    lw  $t9, 0x20($t8)       # vector clobbers those, and the branch
    addiu $t9, $t9, 4        # emulation must read the jump register back
    li  $t3, 99
    jr  $t9
    sw  $t3, 2048($s2)       # return delay slot: faults on page B, emulated
"#;
    let (k, out) = run_guest(KernelConfig::default(), program, |_| {})?;
    check("outcome", out, RunOutcome::Exited(99))?;
    check("fast_delivered", k.process().stats.fast_delivered, 1)?;
    check_ge(
        "subpage_emulations",
        k.process().stats.subpage_emulations,
        1,
    )?;
    check("degraded", k.process().stats.degraded_deliveries, 0)?;
    Ok(observe(&k, &out))
}

fn nested_unix_signals(_seed: u64) -> Result<Observed, String> {
    // A SIGBUS handler takes a second unaligned fault before completing;
    // the inner delivery stacks its sigcontext and in-flight bookkeeping
    // and must not clobber the outer activation's saved state.
    let program = r#"
.org 0x00400000
main:
    la  $a1, outer
    li  $a0, 10              # SIGBUS
    li  $v0, 4               # sigaction
    syscall
    lw  $t0, 2($zero)        # unaligned -> SIGBUS (outer)
    la  $t2, mark            # register writes don't survive sigreturn;
    lw  $a0, 0($t2)          # the mark lives in memory
    li  $v0, 2
    syscall
    nop
outer:
    la  $t2, depth
    lw  $t3, 0($t2)
    bne $t3, $zero, inner_body
    nop
    li  $t3, 1
    sw  $t3, 0($t2)
    lw  $t0, 6($zero)        # unaligned -> SIGBUS (inner, nested)
    lw  $t1, 136($a2)        # outer saved pc
    addiu $t1, $t1, 4        # skip the original faulting lw
    sw  $t1, 136($a2)
    jr  $ra
    nop
inner_body:
    la  $t2, mark
    li  $t3, 42
    sw  $t3, 0($t2)
    lw  $t1, 136($a2)        # inner saved pc (inside the outer handler)
    addiu $t1, $t1, 4
    sw  $t1, 136($a2)
    jr  $ra
    nop
depth: .word 0
mark:  .word 0
"#;
    let (k, out) = run_guest(KernelConfig::default(), program, |_| {})?;
    check("outcome", out, RunOutcome::Exited(42))?;
    check("signals_delivered", k.process().stats.signals_delivered, 2)?;
    Ok(observe(&k, &out))
}

fn second_class_in_flight(_seed: u64) -> Result<Observed, String> {
    // While the TlbMod delivery is logically in flight (frame written,
    // handler not yet returned), the handler raises a breakpoint — a
    // different exception class with a disjoint comm frame. Both must
    // complete; the TlbMod frame must survive the nested delivery.
    let mask = (1u32 << ExcCode::TlbMod.code()) | (1u32 << ExcCode::Breakpoint.code());
    let program = format!(
        r#"
.org 0x00400000
main:
    li  $a0, {mask}
    la  $a1, handler
    li  $a2, 0x7ffe0000
    li  $v0, 7               # uexc_enable
    syscall
    li  $a0, 8192
    li  $v0, 13              # sbrk
    syscall
    move $s1, $v0
    sw  $zero, 0($s1)
    move $a0, $s1
    li  $a1, 4096
    li  $a2, 1               # PROT_READ
    li  $v0, 9               # uexc_protect
    syscall
    sw  $s1, 0($s1)          # TlbMod -> fast delivery
    la  $t6, mark
    lw  $a0, 0($t6)
    addiu $a0, $a0, 54       # 54 + mark(=1) = 55
    li  $v0, 2
    syscall
    nop
handler:
    la  $t2, depth
    lw  $t3, 0($t2)
    bne $t3, $zero, bp_body
    nop
    li  $t3, 1
    sw  $t3, 0($t2)
    break 0                  # second class while TlbMod is in flight
    li  $t0, 0x7ffe0000
    lw  $t1, 0x20($t0)       # TlbMod frame EPC: must have survived
    addiu $t1, $t1, 4
    jr  $t1
    nop
bp_body:
    la  $t4, mark
    li  $t5, 1
    sw  $t5, 0($t4)
    li  $t0, 0x7ffe0000
    lw  $t1, 288($t0)        # breakpoint frame EPC
    addiu $t1, $t1, 4        # skip the break
    jr  $t1
    nop
depth: .word 0
mark:  .word 0
"#
    );
    let (k, out) = run_guest(KernelConfig::default(), &program, |_| {})?;
    check("outcome", out, RunOutcome::Exited(55))?;
    check_ge("fast_delivered", k.process().stats.fast_delivered, 1)?;
    check("degraded", k.process().stats.degraded_deliveries, 0)?;
    Ok(observe(&k, &out))
}

// ---------------------------------------------------------------------------
// Pinning violations

fn evict_handler_tlb(_seed: u64) -> Result<Observed, String> {
    let (k, out) = run_guest(KernelConfig::default(), TLBMOD_FAST_PROGRAM, |k| {
        k.inject(InjectAction::EvictHandlerTlb)
    })?;
    check("outcome", out, RunOutcome::Exited(55))?;
    check("fast_delivered", k.process().stats.fast_delivered, 1)?;
    check("degraded", k.process().stats.degraded_deliveries, 0)?;
    Ok(observe(&k, &out))
}

fn evict_comm_before_save(_seed: u64) -> Result<Observed, String> {
    // The comm page is unpinned and unmapped before the fast save begins.
    // The kernel detects the violated pin, repairs the page, and falls back
    // to Unix signals; with no SIGSEGV handler registered the process dies
    // with a diagnostic — never a wedge.
    let (k, out) = run_guest(KernelConfig::default(), TLBMOD_FAST_PROGRAM, |k| {
        k.inject(InjectAction::EvictCommPage)
    })?;
    check(
        "outcome",
        out,
        RunOutcome::Terminated(efex_simos::signals::Signal::Segv),
    )?;
    check("degraded", k.process().stats.degraded_deliveries, 1)?;
    check("fast_delivered", k.process().stats.fast_delivered, 0)?;
    if k.last_diagnostic().is_none() {
        return Err("no diagnostic recorded for the pinning violation".into());
    }
    Ok(observe(&k, &out))
}

fn evict_comm_breakpoint_window(_seed: u64) -> Result<Observed, String> {
    // The guest vector has already written the breakpoint frame through the
    // KSEG0 alias when the page is evicted; the handler's comm-page load
    // then misses. The refill path must notice the violated pin, restore
    // the frame contents, and resume — recovery through the slow path.
    let mask = 1u32 << ExcCode::Breakpoint.code();
    let program = format!(
        r#"
.org 0x00400000
main:
    li  $a0, {mask}
    la  $a1, fast_handler
    li  $a2, 0x7ffe0000
    li  $v0, 7               # uexc_enable
    syscall
    break 0
    li  $a0, 55
    li  $v0, 2
    syscall
    nop
fast_handler:
    li  $t0, 0x7ffe0000
    lw  $t1, 288($t0)        # breakpoint frame EPC
    addiu $t1, $t1, 4
    jr  $t1
    nop
"#
    );
    let mut k = Kernel::boot(KernelConfig::default()).map_err(|e| format!("boot: {e}"))?;
    let prog = k
        .load_user_program(&program)
        .map_err(|e| format!("assemble/load: {e}"))?;
    let sp = k.setup_stack(8).map_err(|e| format!("stack: {e}"))?;
    k.exec(prog.entry(), sp);
    // Step until the fast path is armed, then yank the comm page out from
    // under the guest mid-flight.
    let mut steps = 0u32;
    while k.process().fast.comm_kseg0 == 0 {
        let out = k.run_user(1).map_err(|e| format!("step: {e}"))?;
        if out != RunOutcome::StepLimit {
            return Err(format!("program ended while arming: {out:?}"));
        }
        steps += 1;
        if steps >= 10_000 {
            return Err("uexc_enable never armed the fast path".into());
        }
    }
    k.inject_evict_comm_page();
    let out = k.run_user(1_000_000).map_err(|e| format!("run: {e}"))?;
    check("outcome", out, RunOutcome::Exited(55))?;
    check("degraded", k.process().stats.degraded_deliveries, 1)?;
    let diag = k.last_diagnostic().unwrap_or_default().to_owned();
    if !diag.contains("repaired") {
        return Err(format!("diagnostic missing 'repaired': {diag:?}"));
    }
    Ok(observe(&k, &out))
}

// ---------------------------------------------------------------------------
// Comm-frame corruption

fn corrupt_comm_epc(seed: u64) -> Result<Observed, String> {
    // The saved EPC is rewritten to a wild (unmapped, word-aligned) address
    // in the window between the kernel's save and the user resume. The
    // handler's return jump lands nowhere; the specified behavior is an
    // ordinary unhandled-SIGSEGV kill — never a wedge or host panic.
    let mut rng = Xorshift::new(seed);
    let wild = 0x6000_0000 | (rng.next_u32() & 0x000f_fffc);
    let (k, out) = run_guest(KernelConfig::default(), TLBMOD_FAST_PROGRAM, |k| {
        k.inject(InjectAction::CorruptCommWord {
            code: ExcCode::TlbMod,
            offset: 0, // the frame's EPC word
            value: wild,
        })
    })?;
    check(
        "outcome",
        out,
        RunOutcome::Terminated(efex_simos::signals::Signal::Segv),
    )?;
    check("fast_delivered", k.process().stats.fast_delivered, 1)?;
    Ok(observe(&k, &out))
}

fn corrupt_comm_unused_word(seed: u64) -> Result<Observed, String> {
    // A concurrent rewrite of a frame word this handler never reads (the
    // saved CAUSE or BADVADDR) must not perturb the delivery at all.
    let mut rng = Xorshift::new(seed);
    let offset = 4 + 4 * (rng.next_u32() & 1); // CAUSE (4) or BADVADDR (8)
    let value = rng.next_u32();
    let (k, out) = run_guest(KernelConfig::default(), TLBMOD_FAST_PROGRAM, |k| {
        k.inject(InjectAction::CorruptCommWord {
            code: ExcCode::TlbMod,
            offset,
            value,
        })
    })?;
    check("outcome", out, RunOutcome::Exited(55))?;
    check("fast_delivered", k.process().stats.fast_delivered, 1)?;
    check("degraded", k.process().stats.degraded_deliveries, 0)?;
    Ok(observe(&k, &out))
}

// ---------------------------------------------------------------------------
// Host-level degradation

fn host_degraded_delivery(_seed: u64) -> Result<Observed, String> {
    // One injected degradation: the first delivery charges Unix-signal
    // costs and is counted; the second identical fault rides the fast path
    // again. The counter must survive into the metrics snapshot.
    let mut h = HostProcess::builder()
        .delivery(DeliveryPath::FastUser)
        .build()
        .map_err(|e| format!("build: {e}"))?;
    let base = h
        .alloc_region(4096, Prot::ReadWrite)
        .map_err(|e| format!("alloc: {e}"))?;
    h.store_u32(base, 0)
        .map_err(|e| format!("seed store: {e}"))?;
    h.protect(Protection::region(base, 4096).read_only())
        .map_err(|e| format!("protect: {e}"))?;
    h.set_handler(
        HandlerSpec::new(move |ctx, info| {
            ctx.protect(Protection::region(info.vaddr & !0xfff, 4096).read_write())
                .expect("re-protect");
            HandlerAction::Retry
        })
        .named("amplify-retry"),
    );
    h.inject_degrade_next_deliveries(1);
    let t0 = h.cycles();
    h.store_u32(base, 1)
        .map_err(|e| format!("degraded store: {e}"))?;
    let degraded_cost = h.cycles() - t0;

    h.protect(Protection::region(base, 4096).read_only())
        .map_err(|e| format!("re-protect: {e}"))?;
    let t1 = h.cycles();
    h.store_u32(base, 2)
        .map_err(|e| format!("fast store: {e}"))?;
    let fast_cost = h.cycles() - t1;

    check("degraded_deliveries", h.stats().degraded_deliveries, 1)?;
    if degraded_cost <= fast_cost {
        return Err(format!(
            "degraded delivery ({degraded_cost}cy) not dearer than fast ({fast_cost}cy)"
        ));
    }
    let snap = h.trace_metrics().snapshot();
    check(
        "snapshot degraded_deliveries",
        snap.get("degraded_deliveries"),
        Some(1),
    )?;

    Ok(Observed {
        outcome: "HostOk".into(),
        fast_delivered: 1,
        signals_delivered: 0,
        degraded_deliveries: h.stats().degraded_deliveries,
        subpage_emulations: 0,
        cycles: h.cycles(),
        diagnostic: None,
    })
}

// ---------------------------------------------------------------------------
// Snapshot/restore under fire

fn snapshot_mid_vulnerable_window(_seed: u64) -> Result<Observed, String> {
    // The moment between the fast path's comm-frame save and the user
    // handler's return jump is the delivery machinery's most vulnerable
    // window: the frame is live guest memory and the handler is mid-flight.
    // A checkpoint taken there must capture all of it. We run the guest
    // uninterrupted for a baseline, then rerun it, freeze the kernel one
    // step after the fast delivery lands in the handler, push the snapshot
    // through its wire format, restore into a freshly booted kernel, and
    // demand that both the interrupted original and the restored copy
    // finish bit-exact against the baseline.
    let mask = 1u32 << ExcCode::Breakpoint.code();
    let program = format!(
        r#"
.org 0x00400000
main:
    li  $a0, {mask}
    la  $a1, fast_handler
    li  $a2, 0x7ffe0000
    li  $v0, 7               # uexc_enable
    syscall
    break 0
    li  $a0, 55
    li  $v0, 2
    syscall
    nop
fast_handler:
    li  $t0, 0x7ffe0000
    lw  $t1, 288($t0)        # breakpoint frame EPC
    addiu $t1, $t1, 4
    jr  $t1
    nop
"#
    );

    let (base_k, base_out) = run_guest(KernelConfig::default(), &program, |_| {})?;
    check("baseline outcome", base_out, RunOutcome::Exited(55))?;
    let baseline = observe(&base_k, &base_out);

    // The breakpoint frame's EPC slot on the comm page: zero until the
    // guest vector's save phase writes it, so its first nonzero read marks
    // entry into the vulnerable window.
    const FRAME_EPC: u32 = 0x7ffe_0000 + 288;

    let mut k = Kernel::boot(KernelConfig::default()).map_err(|e| format!("boot: {e}"))?;
    let prog = k
        .load_user_program(&program)
        .map_err(|e| format!("assemble/load: {e}"))?;
    let sp = k.setup_stack(8).map_err(|e| format!("stack: {e}"))?;
    k.exec(prog.entry(), sp);
    let mut steps = 0u32;
    while k.machine().peek_u32(FRAME_EPC, true).unwrap_or(0) == 0 {
        let out = k.run_user(1).map_err(|e| format!("step: {e}"))?;
        if out != RunOutcome::StepLimit {
            return Err(format!("program ended before delivering: {out:?}"));
        }
        steps += 1;
        if steps >= 10_000 {
            return Err("fast delivery never happened".into());
        }
    }
    // One more step: the frame is saved, the vector/handler is mid-flight,
    // and the return jump is still ahead.
    let out = k.run_user(1).map_err(|e| format!("step: {e}"))?;
    check("mid-window outcome", out, RunOutcome::StepLimit)?;

    let bytes = k.snapshot().to_bytes();
    let state = efex_simos::snapshot::KernelState::from_bytes(&bytes)
        .map_err(|e| format!("decode: {e}"))?;
    let mut restored = Kernel::boot(KernelConfig::default()).map_err(|e| format!("reboot: {e}"))?;
    restored
        .restore(&state)
        .map_err(|e| format!("restore: {e}"))?;

    let k_out = k.run_user(1_000_000).map_err(|e| format!("resume: {e}"))?;
    let r_out = restored
        .run_user(1_000_000)
        .map_err(|e| format!("restored run: {e}"))?;
    let original = observe(&k, &k_out);
    let replica = observe(&restored, &r_out);
    if original != baseline {
        return Err(format!(
            "interrupted run diverged from baseline:\n  base: {baseline:?}\n  got:  {original:?}"
        ));
    }
    if replica != baseline {
        return Err(format!(
            "restored run diverged from baseline:\n  base: {baseline:?}\n  got:  {replica:?}"
        ));
    }
    Ok(replica)
}
