//! # efex-inject — deterministic fault injection for the delivery paths
//!
//! The paper's fast exception path works by *trusting* invariants the
//! kernel establishes out of band: the communication page stays pinned and
//! mapped, its frames are only written by the first-level handler, the user
//! handler's code stays reachable, and a handler never re-faults on its own
//! delivery state. This crate perturbs each of those invariants at a
//! defined point in the delivery and asserts that the kernel either
//! recovers **bit-exact** or degrades along a **specified** path — Unix
//! signal fallback or kill-with-diagnostic, counted in
//! `degraded_deliveries` — and never wedges or panics the host.
//!
//! Every perturbation is a named [`Scenario`]. The full matrix runs in CI
//! (the `inject` binary in efex-bench, and `tests/matrix.rs` here). Each
//! scenario is seeded and runs twice per invocation; the two observations
//! must match field-for-field, so a nondeterministic delivery path fails
//! the gate even when both runs individually "pass".
//!
//! Injection points covered, keyed to the issue's matrix:
//!
//! - **Recursive exception while one is in flight** — a Unix handler that
//!   re-faults before completing (`nested-unix-signals`), a fast handler
//!   interrupted by a second exception *class* (`second-class-in-flight`),
//!   and a fault in the handler's return-jump delay slot
//!   (`handler-return-slot-fault`).
//! - **Comm-page corruption between state save and user resume** — an
//!   unused frame word (`corrupt-comm-unused-word`, bit-exact) and the
//!   saved EPC itself (`corrupt-comm-epc`, specified kill).
//! - **Pinning violations mid-delivery** — the handler's TLB entry
//!   (`evict-handler-tlb`), the comm page before a fast delivery
//!   (`evict-comm-before-save`), and the hardest window: after the guest
//!   vector wrote the frame but before the handler's comm-page load
//!   (`evict-comm-breakpoint-window`).
//! - **Branch-delay-slot emulation shapes** — taken/untaken branch, `jr`,
//!   branch to a cross-page target, the architecturally unpredictable
//!   `jalr rd==rs` shape, and the unaligned-fixup path where the emulated
//!   load clobbers the jump register.
//! - **Host-level degradation** — an injected fall-back to Unix-signal
//!   costs on a `HostProcess` delivery (`host-degraded-delivery`).

#![warn(missing_docs)]

mod scenarios;

use std::fmt;

/// What a scenario is specified to do under injection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Expectation {
    /// The perturbation is absorbed: identical architectural outcome to an
    /// unperturbed run and `degraded_deliveries == 0`.
    BitExact,
    /// The fast path is abandoned but the program still completes
    /// correctly; the delivery is counted degraded and a diagnostic is
    /// recorded.
    DegradedRecovery,
    /// The process is killed along a specified path (Unix-signal fallback
    /// with no handler registered, or kill-with-diagnostic) — never a
    /// wedge, never a host panic.
    Killed,
}

impl fmt::Display for Expectation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expectation::BitExact => write!(f, "bit-exact"),
            Expectation::DegradedRecovery => write!(f, "degraded-recovery"),
            Expectation::Killed => write!(f, "killed"),
        }
    }
}

/// Everything a scenario run exposes for the determinism comparison.
///
/// Two runs of the same scenario with the same seed must produce `Observed`
/// values that are equal field-for-field — including cycle counts, so a
/// delivery path that charges nondeterministically is caught even when the
/// architectural outcome is stable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Observed {
    /// Debug rendering of the final run outcome.
    pub outcome: String,
    /// Fast-path deliveries completed.
    pub fast_delivered: u64,
    /// Unix-signal deliveries completed.
    pub signals_delivered: u64,
    /// Deliveries that fell back to a specified degradation.
    pub degraded_deliveries: u64,
    /// Subpage emulations performed.
    pub subpage_emulations: u64,
    /// Total simulated cycles at the end of the run.
    pub cycles: u64,
    /// The kernel's (or host's) recorded diagnostic, if any.
    pub diagnostic: Option<String>,
}

/// A named, seeded injection scenario.
pub struct Scenario {
    /// Stable identifier (used on the `inject` command line).
    pub id: &'static str,
    /// One-line description of the perturbation and the specified result.
    pub summary: &'static str,
    /// Specified behavior class.
    pub expect: Expectation,
    run: fn(u64) -> Result<Observed, String>,
}

/// Result of one scenario execution (both deterministic runs passed).
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// The scenario's id.
    pub id: &'static str,
    /// Specified behavior class.
    pub expect: Expectation,
    /// The (deterministic) observation.
    pub observed: Observed,
}

/// A scenario failure: which scenario, and why.
#[derive(Clone, Debug)]
pub struct InjectError {
    /// The failing scenario's id.
    pub id: &'static str,
    /// Human-readable cause.
    pub reason: String,
}

impl fmt::Display for InjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario {}: {}", self.id, self.reason)
    }
}

impl std::error::Error for InjectError {}

/// The default seed the CI matrix runs under.
pub const DEFAULT_SEED: u64 = 0xefe1994;

/// The full scenario registry, in a stable order.
pub fn scenarios() -> &'static [Scenario] {
    scenarios::REGISTRY
}

/// Look up a scenario by id.
pub fn find(id: &str) -> Option<&'static Scenario> {
    scenarios().iter().find(|s| s.id == id)
}

/// Derive the per-scenario seed from the matrix seed and the scenario id,
/// so scenarios stay independent when the matrix seed changes.
fn scenario_seed(seed: u64, id: &str) -> u64 {
    // FNV-1a over the id, folded into the seed, then one xorshift* mix.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in id.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    let mut x = seed ^ h;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// A tiny deterministic generator scenarios draw perturbation values from.
/// (Never the std RNG or the clock: the whole point is replayability.)
pub struct Xorshift(u64);

impl Xorshift {
    /// Seeded construction; a zero seed is remapped to a fixed odd value.
    pub fn new(seed: u64) -> Xorshift {
        Xorshift(if seed == 0 {
            0x9e37_79b9_7f4a_7c15
        } else {
            seed
        })
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Run one scenario twice under its derived seed; verify determinism, the
/// expectation-class invariants, and that no run panicked the host.
pub fn run_one(scenario: &'static Scenario, seed: u64) -> Result<ScenarioReport, InjectError> {
    let derived = scenario_seed(seed, scenario.id);
    let fail = |reason: String| InjectError {
        id: scenario.id,
        reason,
    };

    let execute = || -> Result<Observed, InjectError> {
        // A host panic anywhere in the delivery path is itself a finding:
        // convert it to an error instead of tearing down the harness.
        let run = scenario.run;
        std::panic::catch_unwind(move || run(derived))
            .map_err(|p| {
                let msg = p
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| p.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                fail(format!("host panic during delivery: {msg}"))
            })?
            .map_err(fail)
    };

    let first = execute()?;
    let second = execute()?;
    if first != second {
        return Err(fail(format!(
            "nondeterministic under seed {derived:#x}:\n  first:  {first:?}\n  second: {second:?}"
        )));
    }

    match scenario.expect {
        Expectation::BitExact => {
            if first.degraded_deliveries != 0 {
                return Err(fail(format!(
                    "specified bit-exact but counted {} degraded deliveries",
                    first.degraded_deliveries
                )));
            }
        }
        Expectation::DegradedRecovery => {
            if first.degraded_deliveries == 0 {
                return Err(fail(
                    "specified degraded recovery but degraded_deliveries == 0".into(),
                ));
            }
        }
        Expectation::Killed => {
            if !first.outcome.contains("Terminated") {
                return Err(fail(format!(
                    "specified a kill but the process finished as {}",
                    first.outcome
                )));
            }
        }
    }

    Ok(ScenarioReport {
        id: scenario.id,
        expect: scenario.expect,
        observed: first,
    })
}

/// Run the full matrix; the first failing scenario aborts with its cause.
pub fn run_all(seed: u64) -> Result<Vec<ScenarioReport>, InjectError> {
    scenarios().iter().map(|s| run_one(s, seed)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_stable() {
        let mut seen = std::collections::BTreeSet::new();
        for s in scenarios() {
            assert!(seen.insert(s.id), "duplicate scenario id {}", s.id);
            assert!(!s.summary.is_empty());
        }
        assert!(seen.len() >= 14, "matrix shrank to {}", seen.len());
    }

    #[test]
    fn derived_seeds_differ_per_scenario() {
        let a = scenario_seed(DEFAULT_SEED, "corrupt-comm-epc");
        let b = scenario_seed(DEFAULT_SEED, "corrupt-comm-unused-word");
        assert_ne!(a, b);
        // And per matrix seed.
        assert_ne!(a, scenario_seed(DEFAULT_SEED + 1, "corrupt-comm-epc"));
    }

    #[test]
    fn unknown_scenario_lookup_is_none() {
        assert!(find("no-such-scenario").is_none());
        assert!(find("evict-handler-tlb").is_some());
    }

    #[test]
    fn xorshift_is_deterministic_and_nonzero() {
        let mut a = Xorshift::new(7);
        let mut b = Xorshift::new(7);
        for _ in 0..64 {
            let v = a.next_u64();
            assert_eq!(v, b.next_u64());
            assert_ne!(v, 0);
        }
        // Zero seed must not stick at zero.
        assert_ne!(Xorshift::new(0).next_u64(), 0);
    }
}
