//! # efex-watch — conditional data watchpoints over fast exceptions
//!
//! Conditional watchpoints (Wahbe 1992) are one of the exception-based
//! techniques the paper's introduction motivates: a debugger watches a
//! variable by protecting the page that holds it; every store to the page
//! faults, the handler checks whether the access actually touched a
//! watched location (and whether the user's condition holds), then
//! **emulates the access and continues with the protection still in
//! place**. The technique is practical exactly in proportion to exception
//! cost — on the Unix signal path a watched page turns every store on it
//! into ~100 µs; on the paper's fast path it is a few microseconds.
//!
//! Two refinements from the paper are used:
//!
//! - **subpage narrowing** (Section 3.2.4): the watched page is managed at
//!   1 KB granularity, so stores to the three unwatched quarters of the
//!   page are emulated by the *kernel* and never reach the debugger at all
//!   — cutting the false-hit cost;
//! - the debugger's handler completes the faulting access itself
//!   ([`efex_core::HandlerAction::Emulate`]) rather than unprotecting and
//!   reprotecting, so watch coverage never lapses.
//!
//! # Example
//!
//! ```
//! use efex_core::DeliveryPath;
//! use efex_watch::Debugger;
//!
//! # fn main() -> Result<(), efex_watch::WatchError> {
//! let mut dbg = Debugger::new(DeliveryPath::FastUser, true)?;
//! let mem = dbg.alloc(4096)?;
//! dbg.store(mem, 10)?;
//! let w = dbg.watch_write(mem, 4, |old, new| new > old)?;
//! dbg.store(mem, 5)?;   // decreasing: no hit
//! dbg.store(mem, 50)?;  // increasing: hit
//! assert_eq!(dbg.hit_count(w)?, 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

use std::cell::RefCell;
use std::error::Error;
use std::fmt;
use std::rc::Rc;

use efex_core::{
    CoreError, DeliveryPath, FaultInfo, GuestMem, HandlerAction, HandlerSpec, HostProcess, Prot,
    Protection, WorkloadRun,
};
use efex_simos::layout::{PAGE_SIZE, SUBPAGE_SIZE};
use efex_simos::vm::FaultKind;
use efex_trace::{Snapshot, StatsSnapshot};

/// A recorded watchpoint hit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WatchHit {
    /// Which watch fired.
    pub watch: WatchId,
    /// The accessed address.
    pub vaddr: u32,
    /// The previous value of the watched word.
    pub old: u32,
    /// The value being stored.
    pub new: u32,
}

/// Identifies a watchpoint.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct WatchId(usize);

/// Watchpoint errors.
#[derive(Debug)]
pub enum WatchError {
    /// Underlying simulation error.
    Core(CoreError),
    /// The range is empty or not word-aligned.
    BadRange {
        /// Start of the rejected range.
        addr: u32,
        /// Its length in bytes.
        len: u32,
    },
    /// Unknown watch id.
    NoSuchWatch(WatchId),
}

impl fmt::Display for WatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WatchError::Core(e) => write!(f, "simulation error: {e}"),
            WatchError::BadRange { addr, len } => {
                write!(f, "bad watch range {addr:#x}+{len:#x}")
            }
            WatchError::NoSuchWatch(id) => write!(f, "no such watch {id:?}"),
        }
    }
}

impl Error for WatchError {}

impl From<CoreError> for WatchError {
    fn from(e: CoreError) -> WatchError {
        WatchError::Core(e)
    }
}

/// A condition evaluated on each candidate hit: `(old, new) -> fire?`.
type Condition = Box<dyn Fn(u32, u32) -> bool>;

struct Watch {
    start: u32,
    end: u32,
    condition: Condition,
    enabled: bool,
    hits: u64,
}

#[derive(Default)]
struct Shared {
    watches: Vec<Watch>,
    hits: Vec<WatchHit>,
    /// Stores delivered to the debugger that touched no watched word
    /// (false hits — same page/subpage, different address).
    false_hits: u64,
}

impl Shared {
    fn matching(&self, vaddr: u32) -> Option<usize> {
        self.watches
            .iter()
            .position(|w| w.enabled && vaddr >= w.start && vaddr < w.end)
    }
}

/// Statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WatchStats {
    /// Condition-true hits recorded.
    pub hits: u64,
    /// Faults delivered to the debugger that touched no watched word.
    pub false_hits: u64,
    /// Faults the kernel's subpage engine absorbed without involving the
    /// debugger at all.
    pub kernel_absorbed: u64,
    /// Total exceptions delivered.
    pub faults: u64,
}

impl Snapshot for WatchStats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot::new("watch")
            .counter("hits", self.hits)
            .counter("false_hits", self.false_hits)
            .counter("kernel_absorbed", self.kernel_absorbed)
            .counter("faults", self.faults)
    }
}

/// A debugger session: a protected address space plus watchpoints.
pub struct Debugger {
    host: HostProcess,
    shared: Rc<RefCell<Shared>>,
    use_subpages: bool,
}

impl fmt::Debug for Debugger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Debugger")
            .field("watches", &self.shared.borrow().watches.len())
            .finish_non_exhaustive()
    }
}

impl Debugger {
    /// Creates a debugger session on the given delivery path. With
    /// `use_subpages`, watched regions are protected at 1 KB granularity
    /// and off-subpage stores are absorbed in the kernel.
    ///
    /// # Errors
    ///
    /// Fails if the simulated system cannot boot.
    pub fn new(path: DeliveryPath, use_subpages: bool) -> Result<Debugger, WatchError> {
        let mut host = HostProcess::builder().delivery(path).build()?;
        let shared: Rc<RefCell<Shared>> = Rc::default();
        let st = Rc::clone(&shared);
        host.set_handler(
            HandlerSpec::new(move |ctx, info: FaultInfo| {
                if !(info.write && info.kind == FaultKind::Protection) {
                    return HandlerAction::Abort;
                }
                let mut s = st.borrow_mut();
                // The condition check models a handful of debugger
                // instructions.
                ctx.charge(10);
                if let Some(idx) = s.matching(info.vaddr) {
                    let old = ctx.read_raw(info.vaddr & !3).unwrap_or(0);
                    let new = info.value.unwrap_or(0);
                    if (s.watches[idx].condition)(old, new) {
                        s.watches[idx].hits += 1;
                        s.hits.push(WatchHit {
                            watch: WatchId(idx),
                            vaddr: info.vaddr,
                            old,
                            new,
                        });
                    }
                } else {
                    s.false_hits += 1;
                }
                // Complete the store and keep the page protected.
                HandlerAction::Emulate
            })
            .named("watchpoint"),
        );
        Ok(Debugger {
            host,
            shared,
            use_subpages,
        })
    }

    /// Allocates debuggee memory.
    ///
    /// # Errors
    ///
    /// Fails if the region cannot be mapped.
    pub fn alloc(&mut self, len: u32) -> Result<u32, WatchError> {
        Ok(self.host.alloc_region(len, Prot::ReadWrite)?)
    }

    /// The debuggee's store (goes through watch machinery).
    ///
    /// # Errors
    ///
    /// Fails on unmapped addresses.
    pub fn store(&mut self, vaddr: u32, value: u32) -> Result<(), WatchError> {
        Ok(self.host.store_u32(vaddr, value)?)
    }

    /// The debuggee's load.
    ///
    /// # Errors
    ///
    /// Fails on unmapped addresses.
    pub fn load(&mut self, vaddr: u32) -> Result<u32, WatchError> {
        Ok(self.host.load_u32(vaddr)?)
    }

    /// Sets a conditional write watch on `[addr, addr+len)`. The condition
    /// receives `(old_value, new_value)` of the touched word; use
    /// `|_, _| true` for an unconditional watch.
    ///
    /// # Errors
    ///
    /// Fails on empty/misaligned ranges or unmapped pages.
    pub fn watch_write(
        &mut self,
        addr: u32,
        len: u32,
        condition: impl Fn(u32, u32) -> bool + 'static,
    ) -> Result<WatchId, WatchError> {
        if len == 0 || !addr.is_multiple_of(4) {
            return Err(WatchError::BadRange { addr, len });
        }
        let id = {
            let mut s = self.shared.borrow_mut();
            s.watches.push(Watch {
                start: addr,
                end: addr + len,
                condition: Box::new(condition),
                enabled: true,
                hits: 0,
            });
            WatchId(s.watches.len() - 1)
        };
        // Protect the covering region.
        if self.use_subpages {
            let first = addr & !(SUBPAGE_SIZE - 1);
            let last = (addr + len - 1) & !(SUBPAGE_SIZE - 1);
            self.host.subpage_protect(
                Protection::region(first, last - first + SUBPAGE_SIZE).read_only(),
            )?;
        } else {
            let first = addr & !(PAGE_SIZE - 1);
            let last = (addr + len - 1) & !(PAGE_SIZE - 1);
            self.host
                .protect(Protection::region(first, last - first + PAGE_SIZE).read_only())?;
        }
        Ok(id)
    }

    /// Disables a watch (its protection remains until all watches on the
    /// page are gone; disabled watches simply stop matching).
    ///
    /// # Errors
    ///
    /// Fails on unknown ids.
    pub fn disable(&mut self, id: WatchId) -> Result<(), WatchError> {
        let mut s = self.shared.borrow_mut();
        let w = s.watches.get_mut(id.0).ok_or(WatchError::NoSuchWatch(id))?;
        w.enabled = false;
        Ok(())
    }

    /// Drains the recorded hits.
    pub fn take_hits(&mut self) -> Vec<WatchHit> {
        std::mem::take(&mut self.shared.borrow_mut().hits)
    }

    /// Hit count for one watch.
    ///
    /// # Errors
    ///
    /// Fails on unknown ids.
    pub fn hit_count(&self, id: WatchId) -> Result<u64, WatchError> {
        let s = self.shared.borrow();
        s.watches
            .get(id.0)
            .map(|w| w.hits)
            .ok_or(WatchError::NoSuchWatch(id))
    }

    /// Statistics.
    pub fn stats(&self) -> WatchStats {
        let s = self.shared.borrow();
        WatchStats {
            hits: s.watches.iter().map(|w| w.hits).sum(),
            false_hits: s.false_hits,
            kernel_absorbed: self.host.stats().subpage_emulated,
            faults: self.host.stats().faults_delivered,
        }
    }

    /// Per-(path, class) exception metrics for the watchpoint faults taken.
    pub fn trace_metrics(&self) -> &efex_trace::Metrics {
        self.host.trace_metrics()
    }

    /// Health-plane snapshot of the host kernel underneath the debugger
    /// (decode cache, TLB repairs, degraded deliveries). Pure read.
    pub fn health_snapshot(&self) -> efex_trace::StatsSnapshot {
        self.host.health_snapshot()
    }

    /// Simulated time, µs.
    pub fn micros(&self) -> f64 {
        self.host.micros()
    }

    /// Fault injection: the next `n` watchpoint deliveries fall back to
    /// Unix-signal costs. Hit detection must be unaffected — only dearer.
    pub fn inject_degrade_next_deliveries(&mut self, n: u64) {
        self.host.inject_degrade_next_deliveries(n);
    }

    /// Deliveries that fell back to the degraded (Unix-cost) path.
    pub fn degraded_deliveries(&self) -> u64 {
        self.host.stats().degraded_deliveries
    }
}

/// The canonical deterministic workload recorded in `BENCH_baseline.json` by
/// `efex-bench`'s `report` binary: a conditional write watch with subpage
/// protection, driven by a fixed store loop that exercises all three outcomes
/// (condition hits, false hits on the watched subpage, and stores the
/// kernel's subpage engine absorbs). Every counter must reproduce
/// bit-for-bit across runs.
///
/// # Errors
///
/// Propagates debugger errors.
pub fn baseline_workload() -> Result<(f64, StatsSnapshot), WatchError> {
    let mut dbg = Debugger::new(DeliveryPath::FastUser, true)?;
    let base = dbg.alloc(8192)?;
    dbg.watch_write(base + 64, 8, |_, new| new > 100)?;
    for i in 0..32 {
        dbg.store(base + 64, i * 10)?; // watched word: hit when i*10 > 100
        dbg.store(base + 256, i)?; // same subpage, unwatched: false hit
        dbg.store(base + 2048, i)?; // same page, other subpage: absorbed
    }
    Ok((dbg.micros(), dbg.stats().snapshot()))
}

/// A seeded fleet-tenant variant of [`baseline_workload`]: the same
/// conditional-watch store loop with the iteration count and condition
/// threshold derived deterministically from `seed`. Equal seeds reproduce
/// bit-identical hit and delivery counters.
///
/// The returned [`WorkloadRun`] carries the debugger's health-plane
/// snapshot alongside the deterministic stats; only the latter enter fleet
/// fingerprints.
///
/// # Errors
///
/// Propagates debugger errors.
pub fn tenant_workload(seed: u64) -> Result<WorkloadRun, WatchError> {
    let mut dbg = Debugger::new(DeliveryPath::FastUser, true)?;
    let base = dbg.alloc(8192)?;
    let threshold = 60 + (seed % 80) as u32;
    dbg.watch_write(base + 64, 8, move |_, new| new > threshold)?;
    let iterations = 20 + (seed % 16) as u32;
    for i in 0..iterations {
        dbg.store(base + 64, i * 10)?; // watched word: hit past the threshold
        dbg.store(base + 256, i)?; // same subpage, unwatched: false hit
        dbg.store(base + 2048, i)?; // same page, other subpage: absorbed
    }
    Ok(WorkloadRun::new(
        dbg.micros(),
        dbg.stats().snapshot(),
        dbg.health_snapshot(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dbg(subpages: bool) -> Debugger {
        Debugger::new(DeliveryPath::FastUser, subpages).unwrap()
    }

    #[test]
    fn unconditional_watch_fires_on_every_store() {
        let mut d = dbg(false);
        let mem = d.alloc(4096).unwrap();
        d.store(mem, 0).unwrap(); // pre-watch store: no machinery
        let w = d.watch_write(mem + 16, 4, |_, _| true).unwrap();
        d.store(mem + 16, 1).unwrap();
        d.store(mem + 16, 2).unwrap();
        assert_eq!(d.hit_count(w).unwrap(), 2);
        let hits = d.take_hits();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].old, 0);
        assert_eq!(hits[0].new, 1);
        assert_eq!(hits[1].old, 1);
        assert_eq!(hits[1].new, 2);
        // The stores actually landed.
        assert_eq!(d.load(mem + 16).unwrap(), 2);
    }

    #[test]
    fn degraded_watch_delivery_still_detects_hits() {
        // The first watched store is injected to deliver at Unix-signal
        // costs; hit detection and the store's effect must be identical.
        let mut d = dbg(false);
        let mem = d.alloc(4096).unwrap();
        d.store(mem, 0).unwrap();
        let w = d.watch_write(mem + 16, 4, |_, _| true).unwrap();
        d.inject_degrade_next_deliveries(1);
        d.store(mem + 16, 1).unwrap(); // degraded delivery
        d.store(mem + 16, 2).unwrap(); // fast path again
        assert_eq!(d.hit_count(w).unwrap(), 2);
        assert_eq!(d.degraded_deliveries(), 1);
        assert_eq!(d.load(mem + 16).unwrap(), 2, "stores landed");
    }

    #[test]
    fn condition_filters_hits() {
        let mut d = dbg(false);
        let mem = d.alloc(4096).unwrap();
        d.store(mem, 0).unwrap();
        // Fire only when the value decreases.
        let w = d.watch_write(mem, 4, |old, new| new < old).unwrap();
        d.store(mem, 10).unwrap(); // 0 -> 10: no
        d.store(mem, 5).unwrap(); // 10 -> 5: yes
        d.store(mem, 7).unwrap(); // 5 -> 7: no
        assert_eq!(d.hit_count(w).unwrap(), 1);
        assert_eq!(d.take_hits()[0].new, 5);
    }

    #[test]
    fn protection_persists_across_hits() {
        let mut d = dbg(false);
        let mem = d.alloc(4096).unwrap();
        d.store(mem, 0).unwrap();
        let w = d.watch_write(mem, 4, |_, _| true).unwrap();
        for i in 0..10 {
            d.store(mem, i).unwrap();
        }
        assert_eq!(d.hit_count(w).unwrap(), 10, "every store still faults");
    }

    #[test]
    fn stores_elsewhere_on_the_page_are_false_hits() {
        let mut d = dbg(false);
        let mem = d.alloc(4096).unwrap();
        d.store(mem, 0).unwrap();
        let w = d.watch_write(mem, 4, |_, _| true).unwrap();
        d.store(mem + 100, 9).unwrap(); // same page, not watched
        assert_eq!(d.hit_count(w).unwrap(), 0);
        assert_eq!(d.stats().false_hits, 1);
        assert_eq!(d.load(mem + 100).unwrap(), 9, "emulated store landed");
    }

    #[test]
    fn subpage_narrowing_absorbs_distant_stores_in_the_kernel() {
        let mut d = dbg(true);
        let mem = d.alloc(4096).unwrap();
        d.store(mem, 0).unwrap();
        let w = d.watch_write(mem, 4, |_, _| true).unwrap();
        // Store to a different 1 KB subpage: the kernel emulates it; the
        // debugger never runs.
        d.store(mem + 2048, 3).unwrap();
        assert_eq!(d.stats().kernel_absorbed, 1);
        assert_eq!(d.stats().false_hits, 0);
        assert_eq!(d.hit_count(w).unwrap(), 0);
        // Store on the watched subpage still reaches the debugger.
        d.store(mem + 4, 4).unwrap();
        assert_eq!(d.stats().false_hits, 1, "same subpage, unwatched word");
        d.store(mem, 5).unwrap();
        assert_eq!(d.hit_count(w).unwrap(), 1);
    }

    #[test]
    fn disabled_watch_stops_matching() {
        let mut d = dbg(false);
        let mem = d.alloc(4096).unwrap();
        d.store(mem, 0).unwrap();
        let w = d.watch_write(mem, 4, |_, _| true).unwrap();
        d.store(mem, 1).unwrap();
        d.disable(w).unwrap();
        d.store(mem, 2).unwrap(); // still faults, but no hit recorded
        assert_eq!(d.hit_count(w).unwrap(), 1);
        assert_eq!(d.stats().false_hits, 1);
    }

    #[test]
    fn watch_cost_scales_with_delivery_path() {
        let run = |path| {
            let mut d = Debugger::new(path, false).unwrap();
            let mem = d.alloc(4096).unwrap();
            d.store(mem, 0).unwrap();
            d.watch_write(mem, 4, |_, _| true).unwrap();
            let t0 = d.micros();
            for i in 0..50 {
                d.store(mem, i).unwrap();
            }
            d.micros() - t0
        };
        let slow = run(DeliveryPath::UnixSignals);
        let fast = run(DeliveryPath::FastUser);
        assert!(
            slow / fast > 3.0,
            "watchpoints must get much cheaper: {slow:.0} vs {fast:.0} us"
        );
    }

    #[test]
    fn bad_ranges_are_rejected() {
        let mut d = dbg(false);
        let mem = d.alloc(4096).unwrap();
        assert!(matches!(
            d.watch_write(mem + 2, 4, |_, _| true),
            Err(WatchError::BadRange { .. })
        ));
        assert!(matches!(
            d.watch_write(mem, 0, |_, _| true),
            Err(WatchError::BadRange { .. })
        ));
        assert!(matches!(
            d.hit_count(WatchId(9)),
            Err(WatchError::NoSuchWatch(_))
        ));
    }
}
