//! # efex-pstore — persistent object storage with pointer swizzling
//!
//! Reproduces the pointer-swizzling study of Section 4.2.2 of Thekkath &
//! Levy (ASPLOS 1994). A persistent store keeps an object graph on
//! simulated stable storage; pages are faulted into simulated memory on
//! first use, and the pointers they contain are *swizzled* from on-disk
//! object identifiers into virtual addresses.
//!
//! Two axes are explored, as in the paper:
//!
//! - **Residency detection** ([`Strategy`]): a software check before every
//!   dereference vs hardware detection via exceptions (Figure 3). With
//!   exceptions, non-resident pages are detected either by protection
//!   faults on reserved pages or by **unaligned tagged pointers** — the
//!   unswizzled form is an odd-halfword address, so the first dereference
//!   takes an unaligned-access exception whose (specialized, 6 µs) handler
//!   loads the object and repairs the pointer.
//! - **Swizzling policy** ([`Policy`]): *eager* (swizzle every pointer on a
//!   page when it is loaded) vs *lazy* (swizzle each pointer at first use)
//!   — Figure 4.
//!
//! The store runs over [`efex_core::HostProcess`], so faults are real
//! simulated exceptions with the configured delivery path's costs.
//!
//! # Example
//!
//! ```
//! use efex_pstore::{Pstore, PstoreConfig, StableGraph};
//!
//! # fn main() -> Result<(), efex_pstore::PstoreError> {
//! let graph = StableGraph::random(8, 16, 8, 42);
//! let mut store = Pstore::open(graph, PstoreConfig::default())?;
//! let root = store.root()?;
//! let child = store.use_pointer(root, 0)?;  // first use: unaligned fault
//! let again = store.use_pointer(root, 0)?;  // swizzled: free
//! assert_eq!(child, again);
//! assert_eq!(store.stats().faults, 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod graph;
mod store;
pub mod workloads;

pub use graph::{Oid, StableGraph};
pub use store::{Policy, Pstore, PstoreConfig, PstoreError, PstoreStats, Strategy};
