//! The on-disk object graph: simulated stable storage.
//!
//! The store is page-structured, as in Texas-style persistent stores: each
//! stable page holds a fixed number of pointer slots (the paper's Figure 4
//! assumes 50 pointers per page). Slot values are [`Oid`]s of other pages
//! or data words.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A persistent object (page) identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Oid(pub u32);

/// A slot on a stable page.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Slot {
    /// A pointer to another page.
    Ptr(Oid),
    /// A data word.
    Data(u32),
}

/// The stable store: a page-structured object graph. Immutable during a
/// session; [`StableGraph::replace_page`] is the checkpoint write-back
/// path.
#[derive(Clone, Debug)]
pub struct StableGraph {
    pages: Vec<Vec<Slot>>,
    slots_per_page: u32,
}

impl StableGraph {
    /// Builds a random graph of `pages` pages with `slots_per_page` slots,
    /// of which `pointers_per_page` are pointers to uniformly random pages
    /// (the paper's `pn`); the rest are data.
    ///
    /// # Panics
    ///
    /// Panics if `pointers_per_page > slots_per_page` or `pages == 0`.
    pub fn random(
        pages: u32,
        slots_per_page: u32,
        pointers_per_page: u32,
        seed: u64,
    ) -> StableGraph {
        assert!(pages > 0, "empty store");
        assert!(pointers_per_page <= slots_per_page);
        let mut rng = StdRng::seed_from_u64(seed);
        let pages = (0..pages)
            .map(|_| {
                (0..slots_per_page)
                    .map(|i| {
                        if i < pointers_per_page {
                            Slot::Ptr(Oid(rng.gen_range(0..pages)))
                        } else {
                            Slot::Data(rng.gen_range(0..0x1000) * 2) // even: never looks tagged
                        }
                    })
                    .collect()
            })
            .collect();
        StableGraph {
            pages,
            slots_per_page,
        }
    }

    /// Number of stable pages.
    pub fn page_count(&self) -> u32 {
        self.pages.len() as u32
    }

    /// Slots per page.
    pub fn slots_per_page(&self) -> u32 {
        self.slots_per_page
    }

    /// The slots of one page.
    ///
    /// # Panics
    ///
    /// Panics if the OID is out of range.
    pub fn page(&self, oid: Oid) -> &[Slot] {
        &self.pages[oid.0 as usize]
    }

    /// Replaces a page's stable contents (checkpoint write-back).
    ///
    /// # Panics
    ///
    /// Panics if the OID is out of range or the slot count changes.
    pub fn replace_page(&mut self, oid: Oid, slots: Vec<Slot>) {
        assert_eq!(slots.len() as u32, self.slots_per_page, "page shape fixed");
        self.pages[oid.0 as usize] = slots;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_graph_is_deterministic() {
        let a = StableGraph::random(10, 8, 4, 42);
        let b = StableGraph::random(10, 8, 4, 42);
        for i in 0..10 {
            assert_eq!(a.page(Oid(i)), b.page(Oid(i)));
        }
    }

    #[test]
    fn pointer_density_matches_request() {
        let g = StableGraph::random(5, 10, 3, 1);
        for i in 0..5 {
            let ptrs = g
                .page(Oid(i))
                .iter()
                .filter(|s| matches!(s, Slot::Ptr(_)))
                .count();
            assert_eq!(ptrs, 3);
        }
    }

    #[test]
    fn pointers_stay_in_range() {
        let g = StableGraph::random(7, 6, 6, 9);
        for i in 0..7 {
            for s in g.page(Oid(i)) {
                if let Slot::Ptr(Oid(t)) = s {
                    assert!(*t < 7);
                }
            }
        }
    }
}
