//! The persistent-store runtime: residency detection and swizzling.

use std::cell::RefCell;
use std::error::Error;
use std::fmt;
use std::rc::Rc;

use efex_core::{
    CoreError, DeliveryPath, FaultCtx, GuestMem, HandlerAction, HandlerSpec, HostProcess, Prot,
    Protection,
};
use efex_mips::ExcCode;
use efex_simos::layout::PAGE_SIZE;
use efex_trace::{Snapshot, StatsSnapshot};

use crate::graph::{Oid, Slot, StableGraph};

/// How non-residency is detected at a pointer use (the Figure 3 axis).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Strategy {
    /// A software check before every dereference (White & DeWitt style),
    /// charged at [`PstoreConfig::check_cycles`] per use.
    SoftwareCheck,
    /// Reserved pages are access-protected; dereferencing a pointer to a
    /// non-resident page takes a protection fault.
    ProtFault,
    /// Unswizzled pointers are unaligned; the first dereference takes an
    /// unaligned-access exception handled by the paper's specialized
    /// handler (Section 4.2.2).
    Unaligned,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Strategy::SoftwareCheck => "software-check",
            Strategy::ProtFault => "protection-fault",
            Strategy::Unaligned => "unaligned-pointer",
        })
    }
}

/// When pointers are swizzled (the Figure 4 axis).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Policy {
    /// All pointers on a page are swizzled when the page is loaded.
    Eager,
    /// Each pointer is swizzled at its first use.
    Lazy,
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Policy::Eager => "eager",
            Policy::Lazy => "lazy",
        })
    }
}

/// Store configuration.
#[derive(Clone, Copy, Debug)]
pub struct PstoreConfig {
    /// Exception delivery path (for the exception-based strategies).
    pub path: DeliveryPath,
    /// Residency detection strategy.
    pub strategy: Strategy,
    /// Swizzling policy.
    pub policy: Policy,
    /// Cycles per software residency check (`c` in Figure 3).
    pub check_cycles: u64,
    /// Cycles to swizzle one pointer (`s` in Figure 4).
    pub swizzle_cycles: u64,
    /// Cycles to read one page from stable storage.
    pub page_load_cycles: u64,
}

impl Default for PstoreConfig {
    fn default() -> PstoreConfig {
        PstoreConfig {
            path: DeliveryPath::FastUser,
            strategy: Strategy::Unaligned,
            policy: Policy::Lazy,
            check_cycles: 5,
            swizzle_cycles: 25,
            page_load_cycles: 5_000,
        }
    }
}

/// Store statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PstoreStats {
    /// Pointer uses performed.
    pub uses: u64,
    /// Software residency checks executed.
    pub checks: u64,
    /// Pointers swizzled.
    pub swizzles: u64,
    /// Pages loaded from stable storage.
    pub pages_loaded: u64,
    /// Exceptions delivered (from the host process).
    pub faults: u64,
}

impl Snapshot for PstoreStats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot::new("pstore")
            .counter("uses", self.uses)
            .counter("checks", self.checks)
            .counter("swizzles", self.swizzles)
            .counter("pages_loaded", self.pages_loaded)
            .counter("faults", self.faults)
    }
}

/// Store errors.
#[derive(Debug)]
pub enum PstoreError {
    /// Underlying simulation error.
    Core(CoreError),
    /// Invalid configuration (e.g. lazy + protection faults).
    Invalid(String),
    /// A slot did not hold a pointer.
    NotAPointer {
        /// The slot's guest address.
        vaddr: u32,
        /// The word found there.
        word: u32,
    },
}

impl fmt::Display for PstoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PstoreError::Core(e) => write!(f, "simulation error: {e}"),
            PstoreError::Invalid(s) => write!(f, "invalid configuration: {s}"),
            PstoreError::NotAPointer { vaddr, word } => {
                write!(f, "slot {vaddr:#x} holds {word:#x}, not a pointer")
            }
        }
    }
}

impl Error for PstoreError {}

impl From<CoreError> for PstoreError {
    fn from(e: CoreError) -> PstoreError {
        PstoreError::Core(e)
    }
}

/// Shared state the fault handler and the store both touch.
struct Shared {
    graph: StableGraph,
    base: u32,
    resident: Vec<bool>,
    policy: Policy,
    strategy: Strategy,
    swizzle_cycles: u64,
    page_load_cycles: u64,
    swizzles: u64,
    pages_loaded: u64,
    /// The slot address of the pointer being dereferenced — the handler's
    /// stand-in for decoding the faulting instruction to find the pointer
    /// it must repair (which the paper's specialized handler does).
    pending_slot: Option<u32>,
}

impl Shared {
    fn vbase(&self, oid: Oid) -> u32 {
        self.base + oid.0 * PAGE_SIZE
    }

    fn oid_of(&self, vaddr: u32) -> Option<Oid> {
        let off = vaddr.checked_sub(self.base)?;
        let oid = off / PAGE_SIZE;
        (oid < self.graph.page_count()).then_some(Oid(oid))
    }

    /// The unswizzled (tagged, unaligned) in-memory form of a pointer.
    fn tagged(&self, oid: Oid) -> u32 {
        self.vbase(oid) + 2
    }

    fn is_tagged(word: u32) -> bool {
        word % 4 == 2
    }

    /// Materializes a page into memory via `ops`, swizzling per policy.
    fn load_page(&mut self, ops: &mut dyn StoreOps, oid: Oid) -> Result<(), CoreError> {
        if self.resident[oid.0 as usize] {
            return Ok(());
        }
        ops.charge(self.page_load_cycles);
        let base = self.vbase(oid);
        if self.strategy == Strategy::ProtFault {
            ops.set_prot(base, PAGE_SIZE, Prot::ReadWrite)?;
        }
        let slots: Vec<Slot> = self.graph.page(oid).to_vec();
        for (i, slot) in slots.iter().enumerate() {
            let word = match slot {
                Slot::Data(d) => *d & !3, // data words stay aligned-looking
                Slot::Ptr(t) => match self.policy {
                    Policy::Eager => {
                        ops.charge(self.swizzle_cycles);
                        self.swizzles += 1;
                        self.vbase(*t)
                    }
                    Policy::Lazy => self.tagged(*t),
                },
            };
            ops.write_word(base + 4 * i as u32, word)?;
        }
        self.resident[oid.0 as usize] = true;
        self.pages_loaded += 1;
        Ok(())
    }

    /// Lazy-swizzles the pointer in `slot_addr` (known to hold a tagged
    /// word for `target`), returning the swizzled value.
    fn swizzle_slot(
        &mut self,
        ops: &mut dyn StoreOps,
        slot_addr: u32,
        target: Oid,
    ) -> Result<u32, CoreError> {
        ops.charge(self.swizzle_cycles);
        let v = self.vbase(target);
        ops.write_word(slot_addr, v)?;
        self.swizzles += 1;
        Ok(v)
    }
}

/// The operations page loading needs, implemented by both the normal path
/// (the store itself) and the fault handler's context.
trait StoreOps {
    fn write_word(&mut self, addr: u32, v: u32) -> Result<(), CoreError>;
    fn set_prot(&mut self, addr: u32, len: u32, prot: Prot) -> Result<(), CoreError>;
    fn charge(&mut self, cycles: u64);
}

impl StoreOps for FaultCtx<'_> {
    fn write_word(&mut self, addr: u32, v: u32) -> Result<(), CoreError> {
        self.write_raw(addr, v)
    }
    fn set_prot(&mut self, addr: u32, len: u32, prot: Prot) -> Result<(), CoreError> {
        self.protect(Protection::region(addr, len).with_prot(prot))
    }
    fn charge(&mut self, cycles: u64) {
        FaultCtx::charge(self, cycles);
    }
}

impl StoreOps for HostProcess {
    fn write_word(&mut self, addr: u32, v: u32) -> Result<(), CoreError> {
        self.write_raw(addr, v)
    }
    fn set_prot(&mut self, addr: u32, len: u32, prot: Prot) -> Result<(), CoreError> {
        self.protect(Protection::region(addr, len).with_prot(prot))
    }
    fn charge(&mut self, cycles: u64) {
        HostProcess::charge(self, cycles);
    }
}

/// The persistent store runtime.
pub struct Pstore {
    host: HostProcess,
    shared: Rc<RefCell<Shared>>,
    cfg: PstoreConfig,
    uses: u64,
    checks: u64,
}

impl fmt::Debug for Pstore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pstore")
            .field("strategy", &self.cfg.strategy)
            .field("policy", &self.cfg.policy)
            .finish_non_exhaustive()
    }
}

impl Pstore {
    /// Opens a store over a stable graph.
    ///
    /// # Errors
    ///
    /// Fails on invalid strategy/policy combinations (eager swizzling
    /// requires protection faults or checks; lazy exception-based swizzling
    /// requires unaligned pointers) or simulation errors.
    pub fn open(graph: StableGraph, cfg: PstoreConfig) -> Result<Pstore, PstoreError> {
        match (cfg.policy, cfg.strategy) {
            (Policy::Eager, Strategy::Unaligned) => {
                return Err(PstoreError::Invalid(
                    "eager swizzling leaves no unaligned pointers to fault on".into(),
                ))
            }
            (Policy::Lazy, Strategy::ProtFault) => {
                return Err(PstoreError::Invalid(
                    "lazy swizzling detects residency per pointer, not per page; \
                     use unaligned pointers or software checks"
                        .into(),
                ))
            }
            _ => {}
        }
        let mut host = HostProcess::builder().delivery(cfg.path).build()?;
        let len = graph.page_count() * PAGE_SIZE;
        let prot = if cfg.strategy == Strategy::ProtFault {
            Prot::None
        } else {
            Prot::ReadWrite
        };
        let base = host.alloc_region(len, prot)?;
        let page_count = graph.page_count() as usize;
        let shared = Rc::new(RefCell::new(Shared {
            graph,
            base,
            resident: vec![false; page_count],
            policy: cfg.policy,
            strategy: cfg.strategy,
            swizzle_cycles: cfg.swizzle_cycles,
            page_load_cycles: cfg.page_load_cycles,
            swizzles: 0,
            pages_loaded: 0,
            pending_slot: None,
        }));

        if cfg.strategy != Strategy::SoftwareCheck {
            let st = Rc::clone(&shared);
            host.set_handler(
                HandlerSpec::new(move |ctx, info| {
                    let mut s = st.borrow_mut();
                    match info.code {
                        // Unaligned dereference of a tagged pointer: load the
                        // target page and repair the pointer (lazy swizzling).
                        ExcCode::AddrErrLoad | ExcCode::AddrErrStore
                            if Shared::is_tagged(info.vaddr) =>
                        {
                            let Some(target) = s.oid_of(info.vaddr - 2) else {
                                return HandlerAction::Abort;
                            };
                            if s.load_page(ctx, target).is_err() {
                                return HandlerAction::Abort;
                            }
                            let aligned = s.vbase(target) + (info.vaddr - 2) % PAGE_SIZE;
                            if let Some(slot) = s.pending_slot.take() {
                                if s.swizzle_slot(ctx, slot, target).is_err() {
                                    return HandlerAction::Abort;
                                }
                            }
                            HandlerAction::Redirect(aligned)
                        }
                        // Protection fault on a reserved page: load it.
                        ExcCode::TlbMod | ExcCode::TlbLoad | ExcCode::TlbStore => {
                            let Some(target) = s.oid_of(info.vaddr) else {
                                return HandlerAction::Abort;
                            };
                            if s.load_page(ctx, target).is_err() {
                                return HandlerAction::Abort;
                            }
                            HandlerAction::Retry
                        }
                        _ => HandlerAction::Abort,
                    }
                })
                .named("pstore-swizzle"),
            );
        }

        Ok(Pstore {
            host,
            shared,
            cfg,
            uses: 0,
            checks: 0,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &PstoreConfig {
        &self.cfg
    }

    /// Simulated time, µs.
    pub fn micros(&self) -> f64 {
        self.host.micros()
    }

    /// Simulated cycles.
    pub fn cycles(&self) -> u64 {
        self.host.cycles()
    }

    /// Statistics so far.
    pub fn stats(&self) -> PstoreStats {
        let s = self.shared.borrow();
        PstoreStats {
            uses: self.uses,
            checks: self.checks,
            swizzles: s.swizzles,
            pages_loaded: s.pages_loaded,
            faults: self.host.stats().faults_delivered,
        }
    }

    /// Per-(path, class) exception metrics for the residency faults taken.
    pub fn trace_metrics(&self) -> &efex_trace::Metrics {
        self.host.trace_metrics()
    }

    /// Health-plane snapshot of the host kernel underneath the store
    /// (decode cache, TLB repairs, degraded deliveries). Pure read.
    pub fn health_snapshot(&self) -> efex_trace::StatsSnapshot {
        self.host.health_snapshot()
    }

    /// Fault injection: the next `n` swizzle-fault deliveries fall back to
    /// Unix-signal costs. Pointer swizzling must still produce the same
    /// object graph — only dearer.
    pub fn inject_degrade_next_deliveries(&mut self, n: u64) {
        self.host.inject_degrade_next_deliveries(n);
    }

    /// Deliveries that fell back to the degraded (Unix-cost) path.
    pub fn degraded_deliveries(&self) -> u64 {
        self.host.stats().degraded_deliveries
    }

    /// Returns the (loaded) root page's virtual address.
    ///
    /// # Errors
    ///
    /// Fails on simulation errors.
    pub fn root(&mut self) -> Result<u32, PstoreError> {
        let oid = Oid(0);
        let resident = self.shared.borrow().resident[0];
        if !resident {
            let shared = Rc::clone(&self.shared);
            shared.borrow_mut().load_page(&mut self.host, oid)?;
        }
        Ok(self.shared.borrow().vbase(oid))
    }

    /// Uses the pointer in slot `idx` of the object at `obj_vaddr`:
    /// performs the residency protocol and one access through the pointer.
    /// Returns the target's (swizzled) virtual address.
    ///
    /// This is the operation whose cost Figure 3 compares across
    /// strategies: a software check costs `c` cycles on *every* use, while
    /// exception-based detection costs one exception on the *first* use of
    /// each pointer and nothing after.
    ///
    /// # Errors
    ///
    /// Fails if the slot does not hold a pointer.
    pub fn use_pointer(&mut self, obj_vaddr: u32, idx: u32) -> Result<u32, PstoreError> {
        self.uses += 1;
        let slot_addr = obj_vaddr + 4 * idx;
        match self.cfg.strategy {
            Strategy::SoftwareCheck => {
                // The check executes on every dereference.
                self.host.charge(self.cfg.check_cycles);
                self.checks += 1;
                let word = self.host.load_u32(slot_addr)?;
                let target_vaddr = if Shared::is_tagged(word) {
                    let shared = Rc::clone(&self.shared);
                    let mut s = shared.borrow_mut();
                    let target = s.oid_of(word - 2).ok_or(PstoreError::NotAPointer {
                        vaddr: slot_addr,
                        word,
                    })?;
                    s.load_page(&mut self.host, target)?;
                    s.swizzle_slot(&mut self.host, slot_addr, target)?
                } else {
                    let s = self.shared.borrow();
                    if s.oid_of(word).is_none() {
                        return Err(PstoreError::NotAPointer {
                            vaddr: slot_addr,
                            word,
                        });
                    }
                    // Eager + checks: verify target residency explicitly.
                    drop(s);
                    let target = self.shared.borrow().oid_of(word).expect("just checked");
                    let resident = self.shared.borrow().resident[target.0 as usize];
                    if !resident {
                        let shared = Rc::clone(&self.shared);
                        shared.borrow_mut().load_page(&mut self.host, target)?;
                    }
                    word
                };
                // The use itself: one access through the pointer.
                self.host.load_u32(target_vaddr)?;
                Ok(target_vaddr)
            }
            Strategy::Unaligned | Strategy::ProtFault => {
                let word = self.host.load_u32(slot_addr)?;
                let tagged = Shared::is_tagged(word);
                {
                    let mut s = self.shared.borrow_mut();
                    if s.oid_of(word & !3).is_none() {
                        return Err(PstoreError::NotAPointer {
                            vaddr: slot_addr,
                            word,
                        });
                    }
                    // Tell the handler which slot to repair (stands in for
                    // decoding the faulting instruction).
                    s.pending_slot = Some(slot_addr);
                }
                // The access through the (possibly tagged) pointer: this is
                // where the exception fires on first use.
                self.host.load_u32(word)?;
                self.shared.borrow_mut().pending_slot = None;
                if tagged {
                    // The handler repaired the slot: re-read the swizzled
                    // value. The warm path skips this load entirely.
                    Ok(self.host.load_u32(slot_addr)?)
                } else {
                    Ok(word)
                }
            }
        }
    }

    /// Reads a data word from a loaded object.
    ///
    /// # Errors
    ///
    /// Fails on simulation errors.
    pub fn read_data(&mut self, obj_vaddr: u32, idx: u32) -> Result<u32, PstoreError> {
        Ok(self.host.load_u32(obj_vaddr + 4 * idx)?)
    }

    /// Writes a data word into a loaded object (stores never fault under
    /// the residency strategies — the page is resident by construction
    /// once its address is usable).
    ///
    /// # Errors
    ///
    /// Fails on simulation errors.
    pub fn write_data(&mut self, obj_vaddr: u32, idx: u32, value: u32) -> Result<(), PstoreError> {
        Ok(self.host.store_u32(obj_vaddr + 4 * idx, value)?)
    }

    /// Checkpoints the store: every resident page is **unswizzled** —
    /// in-memory pointers are converted back to on-disk object identifiers
    /// (Section 4.2.2: "it is 'unswizzled' to change it from in-memory
    /// format to on-disk format") — and written back to stable storage.
    /// Returns the closed stable graph, which can be re-opened.
    ///
    /// # Errors
    ///
    /// Fails if a resident page contains an unrecognizable word where a
    /// pointer is expected.
    pub fn checkpoint(mut self) -> Result<StableGraph, PstoreError> {
        let resident: Vec<Oid> = {
            let s = self.shared.borrow();
            (0..s.graph.page_count())
                .map(Oid)
                .filter(|o| s.resident[o.0 as usize])
                .collect()
        };
        for oid in resident {
            let (base, slots_per_page) = {
                let s = self.shared.borrow();
                (s.vbase(oid), s.graph.slots_per_page())
            };
            let mut slots = Vec::with_capacity(slots_per_page as usize);
            for i in 0..slots_per_page {
                // Unswizzle with kernel rights: checkpointing is the
                // store's own code, not application pointer use.
                let word = self.host.read_raw(base + 4 * i)?;
                // A pointer in either form — swizzled (vaddr) or still
                // tagged (vaddr+2) — unswizzles to its target's OID.
                let slot = {
                    let s = self.shared.borrow();
                    match s.oid_of(word & !3) {
                        Some(target) => Slot::Ptr(target),
                        None => Slot::Data(word),
                    }
                };
                if matches!(slot, Slot::Ptr(_)) {
                    // Charge the unswizzle work per pointer.
                    let cy = self.cfg.swizzle_cycles;
                    self.host.charge(cy);
                }
                slots.push(slot);
            }
            // Write-back costs one stable-storage page write.
            self.host.charge(self.cfg.page_load_cycles);
            self.shared.borrow_mut().graph.replace_page(oid, slots);
        }
        // The fault handler holds the only other reference to the shared
        // state; drop it so the graph can be taken out.
        self.host.clear_handler();
        let shared = Rc::try_unwrap(self.shared)
            .map_err(|_| PstoreError::Invalid("store still shared".into()))
            .map(RefCell::into_inner);
        match shared {
            Ok(s) => Ok(s.graph),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> StableGraph {
        StableGraph::random(8, 16, 8, 99)
    }

    fn open(strategy: Strategy, policy: Policy) -> Pstore {
        Pstore::open(
            graph(),
            PstoreConfig {
                strategy,
                policy,
                ..PstoreConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn invalid_combinations_are_rejected() {
        assert!(matches!(
            Pstore::open(
                graph(),
                PstoreConfig {
                    strategy: Strategy::Unaligned,
                    policy: Policy::Eager,
                    ..PstoreConfig::default()
                }
            ),
            Err(PstoreError::Invalid(_))
        ));
        assert!(matches!(
            Pstore::open(
                graph(),
                PstoreConfig {
                    strategy: Strategy::ProtFault,
                    policy: Policy::Lazy,
                    ..PstoreConfig::default()
                }
            ),
            Err(PstoreError::Invalid(_))
        ));
    }

    #[test]
    fn degraded_swizzle_delivery_preserves_the_graph() {
        // Two identical stores walk the same pointer; one takes its
        // swizzle fault through an injected degraded delivery. Same
        // traversal result, strictly dearer.
        let mut a = open(Strategy::Unaligned, Policy::Lazy);
        let mut b = open(Strategy::Unaligned, Policy::Lazy);
        let root_a = a.root().unwrap();
        let root_b = b.root().unwrap();
        b.inject_degrade_next_deliveries(1);
        let t_a = a.use_pointer(root_a, 0).unwrap();
        let t_b = b.use_pointer(root_b, 0).unwrap();
        assert_eq!(t_a, t_b, "same graph, same swizzle target");
        assert_eq!(b.degraded_deliveries(), 1);
        assert_eq!(a.degraded_deliveries(), 0);
        assert!(b.cycles() > a.cycles(), "degraded delivery is dearer");
    }

    #[test]
    fn lazy_unaligned_first_use_faults_then_is_free() {
        let mut ps = open(Strategy::Unaligned, Policy::Lazy);
        let root = ps.root().unwrap();
        let t1 = ps.use_pointer(root, 0).unwrap();
        assert_eq!(ps.stats().faults, 1, "first use faults");
        assert_eq!(ps.stats().swizzles, 1, "and swizzles the slot");
        let t2 = ps.use_pointer(root, 0).unwrap();
        assert_eq!(t1, t2);
        assert_eq!(ps.stats().faults, 1, "second use is free");
        assert_eq!(ps.stats().checks, 0, "no software checks");
    }

    #[test]
    fn eager_protfault_loads_and_swizzles_whole_pages() {
        let mut ps = open(Strategy::ProtFault, Policy::Eager);
        let root = ps.root().unwrap();
        let before = ps.stats().swizzles;
        assert_eq!(before, 8, "root page's 8 pointers swizzled at load");
        let target = ps.use_pointer(root, 0).unwrap();
        let st = ps.stats();
        assert_eq!(st.pages_loaded, 2, "root + target");
        assert_eq!(st.swizzles, 16, "target page eagerly swizzled too");
        assert!(st.faults >= 1, "the deref faulted the target in");
        // Re-use: no fault.
        let f = ps.stats().faults;
        ps.use_pointer(root, 0).unwrap();
        assert_eq!(ps.stats().faults, f);
        let _ = target;
    }

    #[test]
    fn software_checks_charge_every_use() {
        let mut ps = open(Strategy::SoftwareCheck, Policy::Lazy);
        let root = ps.root().unwrap();
        for _ in 0..5 {
            ps.use_pointer(root, 0).unwrap();
        }
        let st = ps.stats();
        assert_eq!(st.checks, 5, "a check per use");
        assert_eq!(st.faults, 0, "never faults");
        assert_eq!(st.swizzles, 1, "swizzled once at first use");
    }

    #[test]
    fn data_slots_are_not_pointers() {
        let mut ps = open(Strategy::Unaligned, Policy::Lazy);
        let root = ps.root().unwrap();
        // Slots 8.. are data in this graph (8 pointers per 16-slot page).
        assert!(matches!(
            ps.use_pointer(root, 12),
            Err(PstoreError::NotAPointer { .. })
        ));
    }

    #[test]
    fn deterministic_cycles_for_same_configuration() {
        let run = || {
            let mut ps = open(Strategy::Unaligned, Policy::Lazy);
            let root = ps.root().unwrap();
            for i in 0..8 {
                ps.use_pointer(root, i).unwrap();
            }
            ps.cycles()
        };
        assert_eq!(run(), run());
    }
}

#[cfg(test)]
mod checkpoint_tests {
    use super::*;
    use crate::graph::Slot;

    fn open_lazy(graph: StableGraph) -> Pstore {
        Pstore::open(
            graph,
            PstoreConfig {
                strategy: Strategy::Unaligned,
                policy: Policy::Lazy,
                ..PstoreConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn checkpoint_unswizzles_back_to_oids() {
        let graph = StableGraph::random(6, 8, 4, 21);
        let original: Vec<Vec<Slot>> = (0..6).map(|i| graph.page(Oid(i)).to_vec()).collect();
        let mut ps = open_lazy(graph);
        let root = ps.root().unwrap();
        // Touch some pointers so a mix of swizzled and tagged slots exists.
        ps.use_pointer(root, 0).unwrap();
        ps.use_pointer(root, 2).unwrap();
        let graph2 = ps.checkpoint().unwrap();
        // Pointer structure survives the swizzle/unswizzle round trip.
        for i in 0..6 {
            let before = &original[i as usize];
            let after = graph2.page(Oid(i));
            for (b, a) in before.iter().zip(after) {
                match (b, a) {
                    (Slot::Ptr(x), Slot::Ptr(y)) => assert_eq!(x, y, "page {i}"),
                    // Unloaded pages keep their stable form; loaded data
                    // slots had their low bits masked at load.
                    (Slot::Data(x), Slot::Data(y)) => assert_eq!(*x & !3, *y & !3),
                    (b, a) => panic!("slot kind changed on page {i}: {b:?} -> {a:?}"),
                }
            }
        }
    }

    #[test]
    fn data_mutations_persist_across_checkpoint_and_reopen() {
        let graph = StableGraph::random(4, 8, 2, 22);
        let mut ps = open_lazy(graph);
        let root = ps.root().unwrap();
        // Slots 2.. are data on these pages (2 pointers per page).
        ps.write_data(root, 5, 0xbeec).unwrap();
        let graph2 = ps.checkpoint().unwrap();
        assert_eq!(graph2.page(Oid(0))[5], Slot::Data(0xbeec));
        // Re-open and read it back through the full machinery.
        let mut ps2 = open_lazy(graph2);
        let root2 = ps2.root().unwrap();
        assert_eq!(ps2.read_data(root2, 5).unwrap(), 0xbeec);
    }
}
