//! Measurement workloads for Figures 3 and 4.

use crate::graph::StableGraph;
use crate::store::{Policy, Pstore, PstoreConfig, PstoreError, Strategy};
use efex_core::{DeliveryPath, WorkloadRun};
use efex_trace::StatsSnapshot;

/// Result of one workload run.
#[derive(Clone, Copy, Debug)]
pub struct RunReport {
    /// Simulated time for the measured phase, µs.
    pub micros: f64,
    /// Pointer uses performed.
    pub uses: u64,
    /// Exceptions taken.
    pub faults: u64,
    /// Software checks executed.
    pub checks: u64,
    /// Pointers swizzled.
    pub swizzles: u64,
}

/// Figure 3 workload: every pointer on the root page is used `u` times.
///
/// Under software checks this costs `c` cycles per use; under
/// exception-based detection it costs one exception per *pointer* and
/// nothing per subsequent use — the trade-off `c·u ≷ f·t` of Figure 3.
///
/// # Errors
///
/// Propagates store errors.
pub fn pointer_uses(
    graph: StableGraph,
    cfg: PstoreConfig,
    uses_per_pointer: u32,
) -> Result<RunReport, PstoreError> {
    let pointers = count_pointers(&graph);
    let mut ps = Pstore::open(graph, cfg)?;
    pointer_uses_on(&mut ps, pointers, uses_per_pointer)
}

/// [`pointer_uses`] on an already-opened store (so callers that need
/// post-run state — e.g. the health snapshot — can keep it alive).
fn pointer_uses_on(
    ps: &mut Pstore,
    pointers: u32,
    uses_per_pointer: u32,
) -> Result<RunReport, PstoreError> {
    let root = ps.root()?;
    let start = ps.micros();
    let s0 = ps.stats();
    for idx in 0..pointers {
        for _ in 0..uses_per_pointer {
            ps.use_pointer(root, idx)?;
        }
    }
    let s1 = ps.stats();
    Ok(RunReport {
        micros: ps.micros() - start,
        uses: s1.uses - s0.uses,
        faults: s1.faults - s0.faults,
        checks: s1.checks - s0.checks,
        swizzles: s1.swizzles - s0.swizzles,
    })
}

/// Figure 4 workload: a traversal that visits pages breadth-first, using
/// the first `pointers_used` pointers of each visited page exactly once,
/// up to `max_pages` pages.
///
/// Eager swizzling pays `t + pn·s` per loaded page; lazy pays
/// `pu·(t + s)` — Figure 4's criterion.
///
/// # Errors
///
/// Propagates store errors.
pub fn sparse_traversal(
    graph: StableGraph,
    cfg: PstoreConfig,
    pointers_used: u32,
    max_pages: u32,
) -> Result<RunReport, PstoreError> {
    let pn = count_pointers(&graph);
    let used = pointers_used.min(pn);
    let mut ps = Pstore::open(graph, cfg)?;
    let root = ps.root()?;
    let start = ps.micros();
    let s0 = ps.stats();

    // Process up to `max_pages` pages; each processed page has `used` of
    // its pointers dereferenced exactly once.
    let mut queue = std::collections::VecDeque::from([root]);
    let mut seen = std::collections::BTreeSet::from([root]);
    let mut processed = 0u32;
    while let Some(page) = queue.pop_front() {
        if processed >= max_pages {
            break;
        }
        processed += 1;
        for idx in 0..used {
            let target = ps.use_pointer(page, idx)?;
            if seen.insert(target) {
                queue.push_back(target);
            }
        }
    }

    let s1 = ps.stats();
    Ok(RunReport {
        micros: ps.micros() - start,
        uses: s1.uses - s0.uses,
        faults: s1.faults - s0.faults,
        checks: s1.checks - s0.checks,
        swizzles: s1.swizzles - s0.swizzles,
    })
}

/// The canonical deterministic workload recorded in `BENCH_baseline.json` by
/// `efex-bench`'s `report` binary: [`pointer_uses`] on a fixed random graph
/// with lazy unaligned-tag swizzling over the fast path. Fixed seed — the
/// fault/swizzle counters must reproduce bit-for-bit across runs.
///
/// # Errors
///
/// Propagates store errors.
pub fn baseline_workload() -> Result<(f64, StatsSnapshot), PstoreError> {
    let graph = StableGraph::random(30, 50, 40, 0xb5);
    let cfg = PstoreConfig {
        strategy: Strategy::Unaligned,
        policy: Policy::Lazy,
        path: DeliveryPath::FastUser,
        ..PstoreConfig::default()
    };
    let r = pointer_uses(graph, cfg, 20)?;
    let snap = StatsSnapshot::new("pstore")
        .counter("uses", r.uses)
        .counter("faults", r.faults)
        .counter("checks", r.checks)
        .counter("swizzles", r.swizzles);
    Ok((r.micros, snap))
}

/// A seeded fleet-tenant variant of [`baseline_workload`]: lazy
/// unaligned-tag swizzling over the fast path on a random graph whose shape
/// and reuse factor derive deterministically from `seed`. Equal seeds
/// reproduce bit-identical fault/swizzle counters.
///
/// The returned [`WorkloadRun`] carries the store's health-plane snapshot
/// alongside the deterministic stats; only the latter enter fleet
/// fingerprints.
///
/// # Errors
///
/// Propagates store errors.
pub fn tenant_workload(seed: u64) -> Result<WorkloadRun, PstoreError> {
    let graph = StableGraph::random(
        16 + (seed % 8) as u32,
        50,
        30 + (seed % 11) as u32,
        seed.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ 0xb5,
    );
    let cfg = PstoreConfig {
        strategy: Strategy::Unaligned,
        policy: Policy::Lazy,
        path: DeliveryPath::FastUser,
        ..PstoreConfig::default()
    };
    let pointers = count_pointers(&graph);
    let mut ps = Pstore::open(graph, cfg)?;
    let r = pointer_uses_on(&mut ps, pointers, 8 + (seed % 7) as u32)?;
    let snap = StatsSnapshot::new("pstore")
        .counter("uses", r.uses)
        .counter("faults", r.faults)
        .counter("checks", r.checks)
        .counter("swizzles", r.swizzles);
    Ok(WorkloadRun::new(r.micros, snap, ps.health_snapshot()))
}

fn count_pointers(graph: &StableGraph) -> u32 {
    graph
        .page(crate::graph::Oid(0))
        .iter()
        .filter(|s| matches!(s, crate::graph::Slot::Ptr(_)))
        .count() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{Policy, Strategy};
    use efex_core::DeliveryPath;

    fn graph() -> StableGraph {
        StableGraph::random(40, 50, 50, 4)
    }

    fn cfg(strategy: Strategy, policy: Policy) -> PstoreConfig {
        PstoreConfig {
            strategy,
            policy,
            path: DeliveryPath::FastUser,
            ..PstoreConfig::default()
        }
    }

    #[test]
    fn exceptions_beat_checks_at_high_reuse() {
        // u = 100 uses per pointer, c = 5 cycles: checks cost 500 cycles per
        // pointer; one fast exception costs far less.
        let exc = pointer_uses(graph(), cfg(Strategy::Unaligned, Policy::Lazy), 100).unwrap();
        let chk = pointer_uses(graph(), cfg(Strategy::SoftwareCheck, Policy::Lazy), 100).unwrap();
        assert!(
            exc.micros < chk.micros,
            "exceptions {:.0}us vs checks {:.0}us",
            exc.micros,
            chk.micros
        );
    }

    #[test]
    fn checks_beat_slow_exceptions_at_low_reuse() {
        // u = 1: a check costs 5 cycles; a signal-path exception costs
        // thousands.
        let mut c = cfg(Strategy::Unaligned, Policy::Lazy);
        c.path = DeliveryPath::UnixSignals;
        let exc = pointer_uses(graph(), c, 1).unwrap();
        let chk = pointer_uses(graph(), cfg(Strategy::SoftwareCheck, Policy::Lazy), 1).unwrap();
        assert!(
            chk.micros < exc.micros,
            "checks {:.0}us vs signal exceptions {:.0}us",
            chk.micros,
            exc.micros
        );
    }

    #[test]
    fn dense_traversal_favors_eager() {
        // Every pointer used: eager's one-fault-per-page wins over lazy's
        // fault-per-pointer.
        let eager =
            sparse_traversal(graph(), cfg(Strategy::ProtFault, Policy::Eager), 50, 25).unwrap();
        let lazy =
            sparse_traversal(graph(), cfg(Strategy::Unaligned, Policy::Lazy), 50, 25).unwrap();
        assert!(
            eager.micros < lazy.micros,
            "eager {:.0}us vs lazy {:.0}us",
            eager.micros,
            lazy.micros
        );
    }

    #[test]
    fn sparse_traversal_favors_lazy() {
        // Two of fifty pointers used: lazy swizzles 2, eager swizzles 50
        // per page.
        let eager =
            sparse_traversal(graph(), cfg(Strategy::ProtFault, Policy::Eager), 2, 25).unwrap();
        let lazy =
            sparse_traversal(graph(), cfg(Strategy::Unaligned, Policy::Lazy), 2, 25).unwrap();
        assert!(
            lazy.micros < eager.micros,
            "lazy {:.0}us vs eager {:.0}us",
            lazy.micros,
            eager.micros
        );
        assert!(lazy.swizzles < eager.swizzles);
    }

    #[test]
    fn fault_counts_match_the_model() {
        // Lazy: one fault per distinct pointer use; eager: one per page.
        let eager =
            sparse_traversal(graph(), cfg(Strategy::ProtFault, Policy::Eager), 5, 10).unwrap();
        let lazy =
            sparse_traversal(graph(), cfg(Strategy::Unaligned, Policy::Lazy), 5, 10).unwrap();
        assert!(eager.faults <= eager.uses);
        assert!(lazy.faults <= lazy.uses);
        assert!(
            eager.faults < lazy.faults,
            "eager {} vs lazy {}",
            eager.faults,
            lazy.faults
        );
    }
}
