//! Stock invariants for the fast exception path's static budget.
//!
//! The Table 3 budget lives in one place — [`efex_verify::budget`] — and
//! every watcher of the fast path builds its ceiling from the re-exported
//! constants here instead of transcribing the numbers again (the 44/65 vs
//! 44/55 split-brain this module replaced). The metric names follow the
//! `fast-path` component `efex-fleet` records from its kernel-image probe:
//! `{phase}_measured_instructions` / `{phase}_static_instructions` per
//! phase, plus `total_measured_instructions`, `static_instructions`, and
//! `static_cycles` for the whole path.

use crate::invariant::{Invariant, MetricRef};

pub use efex_verify::{FAST_PATH_CYCLES, FAST_PATH_INSTRUCTIONS};

/// Component name under which the fast-path budget metrics are recorded.
pub const FAST_PATH_COMPONENT: &str = "fast-path";

/// Per-phase ceiling: the dynamic instruction count measured for `label`
/// must not exceed the static bound the verifier proved for that phase.
pub fn fast_path_phase_budget(label: &str) -> Invariant {
    Invariant::ratio_max(
        format!("fast-path-budget-{label}"),
        MetricRef::new(
            FAST_PATH_COMPONENT,
            format!("{label}_measured_instructions"),
        ),
        MetricRef::new(FAST_PATH_COMPONENT, format!("{label}_static_instructions")),
        1.0,
    )
    .hint(
        "measured dynamic instructions exceed the verifier's static \
         bound for this phase; the fast path grew a hidden branch \
         (compare efex-verify's PathBounds against Table 3)",
    )
}

/// Whole-path ceiling: total measured instructions must stay within the
/// verifier's computed static bound.
pub fn fast_path_total_budget() -> Invariant {
    Invariant::ratio_max(
        "fast-path-total-budget",
        MetricRef::new(FAST_PATH_COMPONENT, "total_measured_instructions"),
        MetricRef::new(FAST_PATH_COMPONENT, "static_instructions"),
        1.0,
    )
    .hint(format!(
        "the whole fast path executes more instructions than the static \
         {FAST_PATH_INSTRUCTIONS}-instruction bound; re-run efex-verify \
         against the kernel image"
    ))
}

/// Drift ceilings: the static bounds the verifier computes over the
/// assembled image must equal the published Table 3 budget. A kernel edit
/// that lengthens the fast path moves the computed bound past these
/// constants and trips the invariant before any baseline diff runs.
pub fn fast_path_published_budget() -> Vec<Invariant> {
    vec![
        Invariant::max(
            "fast-path-published-instructions",
            MetricRef::new(FAST_PATH_COMPONENT, "static_instructions"),
            FAST_PATH_INSTRUCTIONS,
        )
        .hint(format!(
            "the verifier's computed fast-path instruction bound exceeds \
             the published Table 3 budget of {FAST_PATH_INSTRUCTIONS}; \
             update efex_verify::budget deliberately or shrink the handler"
        )),
        Invariant::max(
            "fast-path-published-cycles",
            MetricRef::new(FAST_PATH_COMPONENT, "static_cycles"),
            FAST_PATH_CYCLES,
        )
        .hint(format!(
            "the verifier's computed fast-path cycle bound exceeds the \
             published Table 3 budget of {FAST_PATH_CYCLES}; update \
             efex_verify::budget deliberately or shrink the handler"
        )),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn total_budget_trips_on_overrun_and_names_the_published_bound() {
        let mut reg = Registry::new();
        reg.record_gauge(FAST_PATH_COMPONENT, None, "total_measured_instructions", 45);
        reg.record_gauge(
            FAST_PATH_COMPONENT,
            None,
            "static_instructions",
            FAST_PATH_INSTRUCTIONS,
        );
        let inv = fast_path_total_budget();
        assert!(
            inv.check.evaluate(&reg, None).is_some(),
            "overrun must trip"
        );
        assert!(inv.hint.contains("44-instruction"), "{}", inv.hint);
    }

    #[test]
    fn published_budget_trips_when_the_computed_bound_drifts() {
        let mut reg = Registry::new();
        reg.record_gauge(
            FAST_PATH_COMPONENT,
            None,
            "static_instructions",
            FAST_PATH_INSTRUCTIONS + 1,
        );
        reg.record_gauge(FAST_PATH_COMPONENT, None, "static_cycles", FAST_PATH_CYCLES);
        let tripped: Vec<_> = fast_path_published_budget()
            .into_iter()
            .filter(|i| i.check.evaluate(&reg, None).is_some())
            .collect();
        assert_eq!(tripped.len(), 1);
        assert_eq!(tripped[0].name, "fast-path-published-instructions");
    }
}
