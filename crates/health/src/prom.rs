//! Prometheus text-format exposition.
//!
//! Counter names in this workspace are computed strings (e.g.
//! `fast-user/write-protect/deliver_p50`) that are not legal Prometheus
//! metric names, so the exposition uses fixed metric families and carries
//! the real identifiers in labels — `efex_counter{component=…,name=…}` —
//! which keeps the mapping *lossless*: every `StatsSnapshot` counter and
//! every `Histogram` field round-trips through the text format exactly
//! (values are emitted as decimal `u64`, never floats).
//!
//! Histograms follow the Prometheus convention: cumulative `_bucket` series
//! with inclusive `le` upper bounds plus `le="+Inf"`, and `_sum`/`_count`
//! series; `_min`/`_max` gauges carry the two fields the convention has no
//! slot for.

use efex_trace::Histogram;

use crate::monitor::HealthMonitor;
use crate::registry::{MetricKind, Registry, Sample};

/// Escapes a Prometheus label value (backslash, quote, newline).
fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn sample_labels(s: &Sample) -> String {
    let mut labels = format!(
        "component=\"{}\",name=\"{}\"",
        escape_label(&s.component),
        escape_label(&s.name)
    );
    if let Some(t) = s.tenant {
        labels.push_str(&format!(",tenant=\"{t}\""));
    }
    labels
}

fn render_kind(out: &mut String, reg: &Registry, kind: MetricKind) {
    let family = match kind {
        MetricKind::Counter => "efex_counter",
        MetricKind::Gauge => "efex_gauge",
    };
    let samples: Vec<&Sample> = reg.samples().iter().filter(|s| s.kind == kind).collect();
    if samples.is_empty() {
        return;
    }
    out.push_str(&format!("# TYPE {family} {}\n", kind.as_str()));
    for s in samples {
        out.push_str(&format!("{family}{{{}}} {}\n", sample_labels(s), s.value));
    }
}

fn render_histogram(out: &mut String, name: &str, h: &Histogram) {
    let label = format!("name=\"{}\"", escape_label(name));
    let mut cumulative = 0u64;
    for (_lo, hi, count) in h.nonzero_buckets() {
        cumulative += count;
        // Buckets are half-open [lo, hi); Prometheus `le` is inclusive, so
        // the boundary is hi - 1 — which `Histogram::bucket_index` maps
        // straight back to the same bucket on re-parse.
        out.push_str(&format!(
            "efex_histogram_bucket{{{label},le=\"{}\"}} {cumulative}\n",
            hi - 1
        ));
    }
    out.push_str(&format!(
        "efex_histogram_bucket{{{label},le=\"+Inf\"}} {}\n",
        h.count()
    ));
    out.push_str(&format!("efex_histogram_sum{{{label}}} {}\n", h.sum()));
    out.push_str(&format!("efex_histogram_count{{{label}}} {}\n", h.count()));
    if let (Some(min), Some(max)) = (h.min(), h.max()) {
        out.push_str(&format!("efex_histogram_min{{{label}}} {min}\n"));
        out.push_str(&format!("efex_histogram_max{{{label}}} {max}\n"));
    }
}

/// Renders a registry in Prometheus text format.
pub fn registry_to_prometheus(reg: &Registry) -> String {
    let mut out = String::new();
    render_kind(&mut out, reg, MetricKind::Counter);
    render_kind(&mut out, reg, MetricKind::Gauge);
    if !reg.histograms().is_empty() {
        out.push_str("# TYPE efex_histogram histogram\n");
        for (name, h) in reg.histograms() {
            render_histogram(&mut out, name, h);
        }
    }
    out
}

/// Renders a monitor — its registry plus the health-plane summary series
/// (`efex_health_findings`, `efex_health_evaluations`).
pub fn to_prometheus(mon: &HealthMonitor) -> String {
    let mut out = registry_to_prometheus(mon.registry_ref());
    out.push_str("# TYPE efex_health_findings gauge\n");
    out.push_str(&format!("efex_health_findings {}\n", mon.findings().len()));
    out.push_str("# TYPE efex_health_evaluations counter\n");
    out.push_str(&format!("efex_health_evaluations {}\n", mon.evaluations()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render_with_labels() {
        let mut reg = Registry::new();
        reg.record_counter("gc", None, "barrier_faults", 42);
        reg.record_counter("gc", Some(3), "barrier_faults", 7);
        reg.record_gauge("fleet", None, "tenants", 16);
        let text = registry_to_prometheus(&reg);
        assert!(text.contains("# TYPE efex_counter counter\n"), "{text}");
        assert!(
            text.contains("efex_counter{component=\"gc\",name=\"barrier_faults\"} 42\n"),
            "{text}"
        );
        assert!(
            text.contains(
                "efex_counter{component=\"gc\",name=\"barrier_faults\",tenant=\"3\"} 7\n"
            ),
            "{text}"
        );
        assert!(
            text.contains("efex_gauge{component=\"fleet\",name=\"tenants\"} 16\n"),
            "{text}"
        );
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_inf() {
        let mut h = Histogram::new();
        h.record(1);
        h.record(1);
        h.record(1000);
        let mut reg = Registry::new();
        reg.record_histogram("lat", &h);
        let text = registry_to_prometheus(&reg);
        assert!(
            text.contains("efex_histogram_bucket{name=\"lat\",le=\"1\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("efex_histogram_bucket{name=\"lat\",le=\"+Inf\"} 3\n"),
            "{text}"
        );
        assert!(
            text.contains("efex_histogram_sum{name=\"lat\"} 1002\n"),
            "{text}"
        );
        assert!(
            text.contains("efex_histogram_count{name=\"lat\"} 3\n"),
            "{text}"
        );
        assert!(
            text.contains("efex_histogram_min{name=\"lat\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("efex_histogram_max{name=\"lat\"} 1000\n"),
            "{text}"
        );
    }

    #[test]
    fn awkward_names_survive_label_escaping() {
        let mut reg = Registry::new();
        reg.record_counter("trace", None, "fast-user/write-protect/deliver_p50", 91);
        reg.record_counter("odd", None, "quote\"back\\slash", 1);
        let text = registry_to_prometheus(&reg);
        assert!(
            text.contains("name=\"fast-user/write-protect/deliver_p50\"} 91"),
            "{text}"
        );
        assert!(
            text.contains("name=\"quote\\\"back\\\\slash\"} 1"),
            "{text}"
        );
    }
}
