//! JSONL exposition: one self-describing JSON object per line, in the same
//! hand-rolled style as the rest of the workspace (the build is offline —
//! see `efex_trace::json`). Lines come in three types: `sample`,
//! `histogram`, and `finding`, so a stream consumer can filter without a
//! schema.

use efex_trace::json;

use crate::monitor::{HealthFinding, HealthMonitor};
use crate::registry::Registry;

fn sample_lines(out: &mut String, reg: &Registry) {
    for s in reg.samples() {
        let mut line = String::from("{");
        json::field_str(&mut line, "type", "sample");
        json::field_str(&mut line, "component", &s.component);
        json::field_str(&mut line, "name", &s.name);
        if let Some(t) = s.tenant {
            json::field_u64(&mut line, "tenant", u64::from(t));
        }
        json::field_str(&mut line, "kind", s.kind.as_str());
        json::field_u64(&mut line, "value", s.value);
        json::close_object(&mut line);
        out.push_str(&line);
        out.push('\n');
    }
}

fn histogram_lines(out: &mut String, reg: &Registry) {
    for (name, h) in reg.histograms() {
        let mut line = String::from("{");
        json::field_str(&mut line, "type", "histogram");
        json::field_str(&mut line, "name", name);
        json::field_raw(&mut line, "histogram", &h.to_json());
        json::close_object(&mut line);
        out.push_str(&line);
        out.push('\n');
    }
}

/// Renders one finding as a single JSON line.
pub fn finding_to_json(f: &HealthFinding) -> String {
    let mut line = String::from("{");
    json::field_str(&mut line, "type", "finding");
    json::field_str(&mut line, "invariant", &f.invariant);
    if let Some(t) = f.tenant {
        json::field_u64(&mut line, "tenant", u64::from(t));
    }
    if let Some(c) = f.cycles {
        json::field_u64(&mut line, "cycles", c);
    }
    json::field_str(&mut line, "observed", &f.observed);
    json::field_str(&mut line, "bound", &f.bound);
    json::field_str(&mut line, "hint", &f.hint);
    json::close_object(&mut line);
    line
}

/// Renders the whole monitor — samples, histograms, findings — as JSONL.
pub fn to_jsonl(mon: &HealthMonitor) -> String {
    let mut out = String::new();
    sample_lines(&mut out, mon.registry_ref());
    histogram_lines(&mut out, mon.registry_ref());
    for f in mon.findings() {
        out.push_str(&finding_to_json(f));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariant::{Invariant, MetricRef};
    use efex_trace::Histogram;

    #[test]
    fn each_line_is_typed_and_self_contained() {
        let mut mon = HealthMonitor::new()
            .invariant(Invariant::min("floor", MetricRef::new("k", "events"), 10).per_tenant());
        mon.registry().record_counter("k", Some(2), "events", 3);
        let mut h = Histogram::new();
        h.record(44);
        mon.registry().record_histogram("lat", &h);
        mon.finish();

        let text = to_jsonl(&mon);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        assert!(
            lines[0].starts_with("{\"type\":\"sample\"") && lines[0].contains("\"tenant\":2"),
            "{}",
            lines[0]
        );
        assert!(
            lines[1].starts_with("{\"type\":\"histogram\"") && lines[1].contains("\"count\":1"),
            "{}",
            lines[1]
        );
        assert!(
            lines[2].starts_with("{\"type\":\"finding\"")
                && lines[2].contains("\"invariant\":\"floor\""),
            "{}",
            lines[2]
        );
    }
}
