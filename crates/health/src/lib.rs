//! # efex-health — always-on effectiveness monitoring
//!
//! The stack's delivery mechanisms are *performance* mechanisms: the decode
//! cache, the pinned comm page, the fast exception path all stay
//! architecturally transparent when they stop working — a decode cache
//! running at a 0% hit rate delivers exactly the same answers, just slower.
//! Correctness tests can't see that failure mode. This crate watches for it:
//!
//! - a typed **metric registry** ([`Registry`]) fed by every layer's
//!   [`efex_trace::StatsSnapshot`] (and [`efex_trace::Histogram`]s), with
//!   optional per-tenant scoping;
//! - a declarative **invariant engine** ([`Invariant`]) — min/max
//!   thresholds and ratio bounds with warmup windows and per-tenant vs
//!   aggregate scope — evaluated at configurable simulated-cycle intervals
//!   and at end-of-run by a [`HealthMonitor`], producing structured,
//!   actionable [`HealthFinding`]s;
//! - **exposition** in Prometheus text format ([`to_prometheus`]) and JSONL
//!   ([`to_jsonl`]), both lossless for `u64` counters.
//!
//! The health plane is strictly host-side: feeding snapshots and evaluating
//! invariants charges no simulated cycles, so a monitored run is
//! bit-identical to an unmonitored one (`efex-fleet` pins this with a
//! fingerprint comparison).
//!
//! ```
//! use efex_health::{HealthMonitor, Invariant, MetricRef};
//!
//! let mut mon = HealthMonitor::new().with_interval(10_000).invariant(
//!     Invariant::ratio_min(
//!         "decode-cache-hit-rate",
//!         MetricRef::new("kernel-health", "decode_cache_hits"),
//!         MetricRef::new("kernel-health", "decode_cache_misses"),
//!         0.5,
//!     )
//!     .warmup(MetricRef::new("kernel-health", "decode_cache_misses"), 64)
//!     .hint("the decode cache stopped being effective; check the slot hash"),
//! );
//! mon.registry().record_counter("kernel-health", None, "decode_cache_hits", 900);
//! mon.registry().record_counter("kernel-health", None, "decode_cache_misses", 100);
//! mon.observe(50_000); // interval evaluation at simulated cycle 50k
//! assert!(mon.finish().is_empty());
//! ```

#![warn(missing_docs)]

pub mod budget;
mod invariant;
mod jsonl;
mod monitor;
mod prom;
mod registry;

pub use budget::{
    fast_path_phase_budget, fast_path_published_budget, fast_path_total_budget, FAST_PATH_COMPONENT,
};
pub use invariant::{Check, Invariant, MetricRef, Scope, Violation, Warmup};
pub use jsonl::{finding_to_json, to_jsonl};
pub use monitor::{HealthFinding, HealthMonitor};
pub use prom::{registry_to_prometheus, to_prometheus};
pub use registry::{MetricKind, Registry, Sample};
