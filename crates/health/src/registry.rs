//! The typed effectiveness-metric registry.
//!
//! Every layer of the stack contributes flat counters ([`StatsSnapshot`])
//! or latency distributions ([`Histogram`]); the registry gives them one
//! addressable home so invariants can reference a metric by
//! `(component, name)` — optionally scoped to one tenant — without knowing
//! which struct produced it.
//!
//! Recording is an upsert keyed on `(component, tenant, name)` and storage
//! is insertion-ordered, so re-feeding the registry from fresh snapshots is
//! idempotent and every rendering (Prometheus, JSONL) is deterministic.

use efex_trace::{Histogram, StatsSnapshot};

/// What a registered value means. Counters only grow over a run; gauges are
/// instantaneous levels (a ratio scaled by 1e6, a queue depth) that may move
/// both ways. The distinction is exposed verbatim in the Prometheus output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing over the run.
    Counter,
    /// An instantaneous level.
    Gauge,
}

impl MetricKind {
    /// Stable lowercase name (used in expositions).
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// One registered metric sample.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sample {
    /// Which layer produced it (e.g. `"kernel-health"`, `"gc"`, `"fleet"`).
    pub component: String,
    /// Counter name within the component (e.g. `"decode_cache_hits"`).
    pub name: String,
    /// `Some(id)` for per-tenant samples; `None` for aggregate ones.
    pub tenant: Option<u32>,
    /// Counter vs gauge.
    pub kind: MetricKind,
    /// Current value.
    pub value: u64,
}

/// The metric registry: samples plus named histograms, insertion-ordered.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    samples: Vec<Sample>,
    histograms: Vec<(String, Histogram)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Upserts one sample keyed on `(component, tenant, name)`.
    pub fn record(
        &mut self,
        component: &str,
        tenant: Option<u32>,
        name: &str,
        kind: MetricKind,
        value: u64,
    ) {
        match self
            .samples
            .iter_mut()
            .find(|s| s.component == component && s.tenant == tenant && s.name == name)
        {
            Some(s) => {
                s.kind = kind;
                s.value = value;
            }
            None => self.samples.push(Sample {
                component: component.to_string(),
                name: name.to_string(),
                tenant,
                kind,
                value,
            }),
        }
    }

    /// Upserts a [`MetricKind::Counter`] sample.
    pub fn record_counter(&mut self, component: &str, tenant: Option<u32>, name: &str, value: u64) {
        self.record(component, tenant, name, MetricKind::Counter, value);
    }

    /// Upserts a [`MetricKind::Gauge`] sample.
    pub fn record_gauge(&mut self, component: &str, tenant: Option<u32>, name: &str, value: u64) {
        self.record(component, tenant, name, MetricKind::Gauge, value);
    }

    /// Records every counter of a [`StatsSnapshot`] under its component.
    pub fn record_snapshot(&mut self, tenant: Option<u32>, snap: &StatsSnapshot) {
        for (name, value) in &snap.counters {
            self.record(snap.component, tenant, name, MetricKind::Counter, *value);
        }
    }

    /// Upserts a named histogram (cloned in).
    pub fn record_histogram(&mut self, name: &str, h: &Histogram) {
        match self.histograms.iter_mut().find(|(n, _)| n == name) {
            Some((_, existing)) => *existing = h.clone(),
            None => self.histograms.push((name.to_string(), h.clone())),
        }
    }

    /// Looks a sample's value up by its full key.
    pub fn get(&self, component: &str, tenant: Option<u32>, name: &str) -> Option<u64> {
        self.samples
            .iter()
            .find(|s| s.component == component && s.tenant == tenant && s.name == name)
            .map(|s| s.value)
    }

    /// All samples, in first-recorded order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// All histograms, in first-recorded order.
    pub fn histograms(&self) -> &[(String, Histogram)] {
        &self.histograms
    }

    /// Distinct tenant ids present, ascending.
    pub fn tenants(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.samples.iter().filter_map(|s| s.tenant).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_is_an_upsert() {
        let mut r = Registry::new();
        r.record_counter("gc", None, "faults", 3);
        r.record_counter("gc", None, "faults", 7);
        assert_eq!(r.get("gc", None, "faults"), Some(7));
        assert_eq!(r.samples().len(), 1, "upsert, not append");
    }

    #[test]
    fn tenant_scopes_are_distinct_keys() {
        let mut r = Registry::new();
        r.record_counter("gc", None, "faults", 10);
        r.record_counter("gc", Some(1), "faults", 3);
        r.record_counter("gc", Some(2), "faults", 7);
        assert_eq!(r.get("gc", None, "faults"), Some(10));
        assert_eq!(r.get("gc", Some(1), "faults"), Some(3));
        assert_eq!(r.get("gc", Some(2), "faults"), Some(7));
        assert_eq!(r.tenants(), vec![1, 2]);
    }

    #[test]
    fn snapshot_feeds_the_registry() {
        let snap = StatsSnapshot::new("host")
            .counter("faults_delivered", 5)
            .counter("accesses", 100);
        let mut r = Registry::new();
        r.record_snapshot(Some(4), &snap);
        assert_eq!(r.get("host", Some(4), "faults_delivered"), Some(5));
        assert_eq!(r.get("host", Some(4), "accesses"), Some(100));
        assert_eq!(r.get("host", None, "accesses"), None, "tenant-scoped");
    }

    #[test]
    fn histograms_upsert_by_name() {
        let mut h = Histogram::new();
        h.record(100);
        let mut r = Registry::new();
        r.record_histogram("latency_ns", &h);
        h.record(200);
        r.record_histogram("latency_ns", &h);
        assert_eq!(r.histograms().len(), 1);
        assert_eq!(r.histograms()[0].1.count(), 2);
    }
}
