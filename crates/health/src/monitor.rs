//! The health monitor: periodic + end-of-run invariant evaluation.
//!
//! A [`HealthMonitor`] owns the registry and the invariant list. Callers
//! feed it snapshots as the run progresses and call [`HealthMonitor::observe`]
//! with the current *simulated* cycle counter; the monitor evaluates the
//! invariants whenever the configured interval has elapsed, and always once
//! more in [`HealthMonitor::finish`]. Evaluation is a pure read of recorded
//! values — the monitor never charges simulated cycles, so a monitored run
//! stays bit-identical to an unmonitored one.

use std::fmt;

use crate::invariant::{Invariant, Scope};
use crate::registry::Registry;

/// One tripped invariant, with enough context to act on: which bound broke,
/// in which scope, at which simulated cycle, with the observed operands and
/// the invariant's hint. Mirrors the diagnostic shape of `efex-verify`
/// findings (label + observation + `>`-prefixed context line).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HealthFinding {
    /// The invariant's name.
    pub invariant: String,
    /// `Some(id)` when a per-tenant evaluation tripped.
    pub tenant: Option<u32>,
    /// Simulated cycle of the evaluation; `None` for end-of-run.
    pub cycles: Option<u64>,
    /// What was measured (with raw operands).
    pub observed: String,
    /// The bound it broke.
    pub bound: String,
    /// The invariant's actionable hint.
    pub hint: String,
}

impl fmt::Display for HealthFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let scope = match self.tenant {
            Some(id) => format!("tenant {id}"),
            None => "aggregate".to_string(),
        };
        let when = match self.cycles {
            Some(c) => format!("at cycle {c}"),
            None => "at end of run".to_string(),
        };
        write!(
            f,
            "[{}] {scope}: {} violates {} {when}",
            self.invariant, self.observed, self.bound
        )?;
        if !self.hint.is_empty() {
            write!(f, "\n    > {}", self.hint)?;
        }
        Ok(())
    }
}

/// The always-on health plane for one run.
#[derive(Clone, Debug, Default)]
pub struct HealthMonitor {
    registry: Registry,
    invariants: Vec<Invariant>,
    interval: Option<u64>,
    last_eval: u64,
    evaluations: u64,
    findings: Vec<HealthFinding>,
}

impl HealthMonitor {
    /// A monitor with no invariants and the default evaluation interval.
    pub fn new() -> HealthMonitor {
        HealthMonitor::default()
    }

    /// Evaluate every `cycles` simulated cycles (checked on each
    /// [`HealthMonitor::observe`] call). Without an interval the monitor
    /// only evaluates in [`HealthMonitor::finish`].
    pub fn with_interval(mut self, cycles: u64) -> HealthMonitor {
        self.interval = Some(cycles.max(1));
        self
    }

    /// Adds an invariant (builder-style).
    pub fn invariant(mut self, inv: Invariant) -> HealthMonitor {
        self.invariants.push(inv);
        self
    }

    /// Adds an invariant in place.
    pub fn add_invariant(&mut self, inv: Invariant) {
        self.invariants.push(inv);
    }

    /// The registered invariants.
    pub fn invariants(&self) -> &[Invariant] {
        &self.invariants
    }

    /// Mutable registry access — feed snapshots through this.
    pub fn registry(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// Read-only registry access (expositions render from this).
    pub fn registry_ref(&self) -> &Registry {
        &self.registry
    }

    /// Interval hook: call with the current simulated cycle counter after
    /// feeding fresh snapshots. Evaluates all invariants if the configured
    /// interval has elapsed since the last evaluation; returns the number
    /// of *new* findings this call produced.
    pub fn observe(&mut self, cycles: u64) -> usize {
        let Some(interval) = self.interval else {
            return 0;
        };
        if cycles.saturating_sub(self.last_eval) < interval {
            return 0;
        }
        self.last_eval = cycles;
        self.evaluate_at(Some(cycles))
    }

    /// End-of-run evaluation: always runs, regardless of interval state.
    /// Returns all findings accumulated over the run.
    pub fn finish(&mut self) -> &[HealthFinding] {
        self.evaluate_at(None);
        &self.findings
    }

    /// Findings accumulated so far.
    pub fn findings(&self) -> &[HealthFinding] {
        &self.findings
    }

    /// True while no invariant has tripped.
    pub fn healthy(&self) -> bool {
        self.findings.is_empty()
    }

    /// How many evaluation passes have run (interval + finish).
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    fn evaluate_at(&mut self, cycles: Option<u64>) -> usize {
        self.evaluations += 1;
        let before = self.findings.len();
        for inv in &self.invariants {
            let scopes: Vec<Option<u32>> = match inv.scope {
                Scope::Aggregate => vec![None],
                Scope::PerTenant => self.registry.tenants().into_iter().map(Some).collect(),
            };
            for tenant in scopes {
                if !inv.warmed_up(&self.registry, tenant) {
                    continue;
                }
                let Some(v) = inv.check.evaluate(&self.registry, tenant) else {
                    continue;
                };
                // One finding per (invariant, scope): a bound that stays
                // broken across intervals is one pathology, not many.
                if self
                    .findings
                    .iter()
                    .any(|f| f.invariant == inv.name && f.tenant == tenant)
                {
                    continue;
                }
                self.findings.push(HealthFinding {
                    invariant: inv.name.clone(),
                    tenant,
                    cycles,
                    observed: v.observed,
                    bound: v.bound,
                    hint: inv.hint.clone(),
                });
            }
        }
        self.findings.len() - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariant::MetricRef;

    fn m(name: &str) -> MetricRef {
        MetricRef::new("k", name)
    }

    #[test]
    fn interval_gating_and_end_of_run() {
        let mut mon = HealthMonitor::new()
            .with_interval(1000)
            .invariant(Invariant::min("activity", m("events"), 5));
        mon.registry().record_counter("k", None, "events", 1);
        assert_eq!(mon.observe(500), 0, "interval not yet elapsed");
        assert_eq!(mon.observe(1000), 1, "interval elapsed, bound broken");
        assert_eq!(mon.observe(2000), 0, "same violation not re-reported");
        mon.registry().record_counter("k", None, "events", 9);
        let findings = mon.finish();
        assert_eq!(findings.len(), 1, "finish keeps the historical finding");
        assert_eq!(findings[0].cycles, Some(1000));
        assert!(mon.evaluations() >= 2);
    }

    #[test]
    fn per_tenant_scope_isolates_the_sick_tenant() {
        let mut mon = HealthMonitor::new()
            .invariant(Invariant::ratio_min("hit-rate", m("hits"), m("misses"), 0.25).per_tenant());
        mon.registry().record_counter("k", Some(0), "hits", 90);
        mon.registry().record_counter("k", Some(0), "misses", 10);
        mon.registry().record_counter("k", Some(1), "hits", 0);
        mon.registry().record_counter("k", Some(1), "misses", 40);
        let findings = mon.finish().to_vec();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].tenant, Some(1));
        assert!(!mon.healthy());
    }

    #[test]
    fn warmup_suppresses_cold_start_noise() {
        let mut mon = HealthMonitor::new().invariant(
            Invariant::ratio_min("hit-rate", m("hits"), m("misses"), 0.5).warmup(m("misses"), 100),
        );
        mon.registry().record_counter("k", None, "hits", 0);
        mon.registry().record_counter("k", None, "misses", 3);
        mon.finish();
        assert!(mon.healthy(), "3 misses is inside the warmup window");
    }

    #[test]
    fn finding_renders_scope_observation_bound_and_hint() {
        let mut mon = HealthMonitor::new().invariant(
            Invariant::max("churn", m("evictions"), 10)
                .per_tenant()
                .hint("check the slot hash for systematic aliasing"),
        );
        mon.registry()
            .record_counter("k", Some(7), "evictions", 999);
        mon.finish();
        let text = mon.findings()[0].to_string();
        assert!(text.contains("[churn]"), "{text}");
        assert!(text.contains("tenant 7"), "{text}");
        assert!(text.contains("k/evictions = 999"), "{text}");
        assert!(text.contains("<= 10"), "{text}");
        assert!(text.contains("> check the slot hash"), "{text}");
    }
}
