//! Declarative invariant specifications.
//!
//! An [`Invariant`] states what "the mechanism is still effective" means for
//! one metric (or ratio of metrics): a bound, an optional warmup window so
//! cold starts don't trip it, a scope (aggregate vs per-tenant), and an
//! actionable hint included verbatim in any finding. The monitor evaluates
//! these against the registry; the specs themselves are pure data.

use std::fmt;

use crate::registry::Registry;

/// Addresses one metric in the registry: `component/name`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricRef {
    /// Component that recorded the metric (e.g. `"kernel-health"`).
    pub component: String,
    /// Counter name within the component.
    pub name: String,
}

impl MetricRef {
    /// A reference to `name` under `component`.
    pub fn new(component: impl Into<String>, name: impl Into<String>) -> MetricRef {
        MetricRef {
            component: component.into(),
            name: name.into(),
        }
    }

    fn resolve(&self, reg: &Registry, tenant: Option<u32>) -> Option<u64> {
        reg.get(&self.component, tenant, &self.name)
    }
}

impl fmt::Display for MetricRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.component, self.name)
    }
}

/// Whether an invariant is checked once against aggregate samples or once
/// per tenant present in the registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scope {
    /// Evaluate against unscoped (`tenant == None`) samples.
    Aggregate,
    /// Evaluate once for every tenant id the registry has seen.
    PerTenant,
}

/// The bound an invariant asserts.
#[derive(Clone, Debug)]
pub enum Check {
    /// `metric >= min`.
    Min {
        /// The watched metric.
        metric: MetricRef,
        /// Lower bound, inclusive.
        min: u64,
    },
    /// `metric <= max`.
    Max {
        /// The watched metric.
        metric: MetricRef,
        /// Upper bound, inclusive.
        max: u64,
    },
    /// `num / den >= min`. Skipped while `den == 0` (no signal yet).
    RatioMin {
        /// Numerator metric.
        num: MetricRef,
        /// Denominator metric.
        den: MetricRef,
        /// Lower bound on the ratio, inclusive.
        min: f64,
    },
    /// `num / den <= max`. Skipped while `den == 0`.
    RatioMax {
        /// Numerator metric.
        num: MetricRef,
        /// Denominator metric.
        den: MetricRef,
        /// Upper bound on the ratio, inclusive.
        max: f64,
    },
}

/// A violated check, rendered for the finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// What was measured, with the raw operands (e.g.
    /// `"kernel-health/decode_cache_hits ratio 0.000 (0 / 1423)"`).
    pub observed: String,
    /// The bound it broke (e.g. `">= 0.25"`).
    pub bound: String,
}

impl Check {
    /// Evaluates against `reg` in the given tenant scope. `None` means the
    /// check passed — or could not be evaluated (metric absent, ratio
    /// denominator zero), which is deliberately not a violation: a layer
    /// that never reported is covered by `Min` activity invariants instead.
    pub fn evaluate(&self, reg: &Registry, tenant: Option<u32>) -> Option<Violation> {
        match self {
            Check::Min { metric, min } => {
                let v = metric.resolve(reg, tenant)?;
                (v < *min).then(|| Violation {
                    observed: format!("{metric} = {v}"),
                    bound: format!(">= {min}"),
                })
            }
            Check::Max { metric, max } => {
                let v = metric.resolve(reg, tenant)?;
                (v > *max).then(|| Violation {
                    observed: format!("{metric} = {v}"),
                    bound: format!("<= {max}"),
                })
            }
            Check::RatioMin { num, den, min } => {
                let (n, d) = (num.resolve(reg, tenant)?, den.resolve(reg, tenant)?);
                if d == 0 {
                    return None;
                }
                let ratio = n as f64 / d as f64;
                (ratio < *min).then(|| Violation {
                    observed: format!("{num} / {den} = {ratio:.3} ({n} / {d})"),
                    bound: format!(">= {min}"),
                })
            }
            Check::RatioMax { num, den, max } => {
                let (n, d) = (num.resolve(reg, tenant)?, den.resolve(reg, tenant)?);
                if d == 0 {
                    return None;
                }
                let ratio = n as f64 / d as f64;
                (ratio > *max).then(|| Violation {
                    observed: format!("{num} / {den} = {ratio:.3} ({n} / {d})"),
                    bound: format!("<= {max}"),
                })
            }
        }
    }
}

/// The warmup window: evaluation is skipped until this activity metric has
/// reached `min_value` (in the same tenant scope), so invariants about
/// *rates* don't trip on the first handful of events.
#[derive(Clone, Debug)]
pub struct Warmup {
    /// Activity metric that gates evaluation.
    pub metric: MetricRef,
    /// Evaluation starts once the metric reaches this value.
    pub min_value: u64,
}

/// One declarative health invariant.
#[derive(Clone, Debug)]
pub struct Invariant {
    /// Short kebab-case identifier (e.g. `"decode-cache-hit-rate"`).
    pub name: String,
    /// Aggregate vs per-tenant evaluation.
    pub scope: Scope,
    /// The bound.
    pub check: Check,
    /// Optional warmup gate.
    pub warmup: Option<Warmup>,
    /// Actionable guidance for whoever reads the finding: what the
    /// violation usually means and where to look first.
    pub hint: String,
}

impl Invariant {
    /// `metric >= min`, aggregate scope.
    pub fn min(name: impl Into<String>, metric: MetricRef, min: u64) -> Invariant {
        Invariant::with_check(name, Check::Min { metric, min })
    }

    /// `metric <= max`, aggregate scope.
    pub fn max(name: impl Into<String>, metric: MetricRef, max: u64) -> Invariant {
        Invariant::with_check(name, Check::Max { metric, max })
    }

    /// `num / den >= min`, aggregate scope.
    pub fn ratio_min(
        name: impl Into<String>,
        num: MetricRef,
        den: MetricRef,
        min: f64,
    ) -> Invariant {
        Invariant::with_check(name, Check::RatioMin { num, den, min })
    }

    /// `num / den <= max`, aggregate scope.
    pub fn ratio_max(
        name: impl Into<String>,
        num: MetricRef,
        den: MetricRef,
        max: f64,
    ) -> Invariant {
        Invariant::with_check(name, Check::RatioMax { num, den, max })
    }

    fn with_check(name: impl Into<String>, check: Check) -> Invariant {
        Invariant {
            name: name.into(),
            scope: Scope::Aggregate,
            check,
            warmup: None,
            hint: String::new(),
        }
    }

    /// Switches to per-tenant evaluation.
    pub fn per_tenant(mut self) -> Invariant {
        self.scope = Scope::PerTenant;
        self
    }

    /// Gates evaluation until `metric >= min_value`.
    pub fn warmup(mut self, metric: MetricRef, min_value: u64) -> Invariant {
        self.warmup = Some(Warmup { metric, min_value });
        self
    }

    /// Attaches the actionable hint.
    pub fn hint(mut self, hint: impl Into<String>) -> Invariant {
        self.hint = hint.into();
        self
    }

    /// True when the warmup gate (if any) is satisfied in this scope.
    pub fn warmed_up(&self, reg: &Registry, tenant: Option<u32>) -> bool {
        match &self.warmup {
            None => true,
            Some(w) => w
                .metric
                .resolve(reg, tenant)
                .is_some_and(|v| v >= w.min_value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> Registry {
        let mut r = Registry::new();
        r.record_counter("k", None, "hits", 10);
        r.record_counter("k", None, "misses", 90);
        r.record_counter("k", Some(3), "hits", 0);
        r.record_counter("k", Some(3), "misses", 50);
        r
    }

    fn m(name: &str) -> MetricRef {
        MetricRef::new("k", name)
    }

    #[test]
    fn min_and_max_bounds() {
        let r = reg();
        assert!(Check::Min {
            metric: m("hits"),
            min: 10
        }
        .evaluate(&r, None)
        .is_none());
        let v = Check::Min {
            metric: m("hits"),
            min: 11,
        }
        .evaluate(&r, None)
        .expect("10 < 11 must trip");
        assert_eq!(v.observed, "k/hits = 10");
        assert_eq!(v.bound, ">= 11");
        assert!(Check::Max {
            metric: m("misses"),
            max: 89
        }
        .evaluate(&r, None)
        .is_some());
    }

    #[test]
    fn ratio_bounds_and_zero_denominator() {
        let r = reg();
        // 10 / 90 = 0.111; min 0.25 trips.
        let v = Check::RatioMin {
            num: m("hits"),
            den: m("misses"),
            min: 0.25,
        }
        .evaluate(&r, None)
        .expect("0.111 < 0.25");
        assert!(v.observed.contains("0.111"), "{}", v.observed);
        // Tenant 3: hits 0 / misses 50 → ratio 0, trips with tenant scope.
        assert!(Check::RatioMin {
            num: m("hits"),
            den: m("misses"),
            min: 0.25
        }
        .evaluate(&r, Some(3))
        .is_some());
        // Zero denominator: skipped, not a violation.
        let mut r2 = Registry::new();
        r2.record_counter("k", None, "hits", 0);
        r2.record_counter("k", None, "misses", 0);
        assert!(Check::RatioMin {
            num: m("hits"),
            den: m("misses"),
            min: 0.25
        }
        .evaluate(&r2, None)
        .is_none());
    }

    #[test]
    fn missing_metric_is_not_a_violation() {
        let r = reg();
        assert!(Check::Min {
            metric: MetricRef::new("k", "absent"),
            min: 1
        }
        .evaluate(&r, None)
        .is_none());
    }

    #[test]
    fn warmup_gates_evaluation() {
        let r = reg();
        let inv = Invariant::ratio_min("hit-rate", m("hits"), m("misses"), 0.25)
            .warmup(m("misses"), 1000);
        assert!(!inv.warmed_up(&r, None), "only 90 misses of 1000 warmup");
        let warm =
            Invariant::ratio_min("hit-rate", m("hits"), m("misses"), 0.25).warmup(m("misses"), 50);
        assert!(warm.warmed_up(&r, None));
    }
}
