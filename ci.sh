#!/bin/sh
# The full CI gate: build, test, lint, format. Run before every push.
set -eux

cargo build --release
cargo test -q
cargo test --workspace -q
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
