#!/bin/sh
# The full CI gate: build, test, lint, format. Run before every push.
# Each stage runs through gate() so the log shows per-stage wall time —
# when CI slows down, the offending stage is visible at a glance.
set -eu

gate() {
    gate_name="$1"
    shift
    gate_start=$(date +%s)
    echo ">>> gate: ${gate_name}: $*"
    "$@"
    echo "<<< gate: ${gate_name}: $(( $(date +%s) - gate_start ))s"
}

gate build cargo build --release
gate test cargo test -q
gate test-workspace cargo test --workspace -q
gate lint cargo run --release -p efex-bench --bin lint -- --baseline BENCH_baseline.json
gate inject cargo run --release -p efex-bench --bin inject -- --all
gate fleet-determinism cargo run --release -p efex-bench --bin fleet -- --tenants 16 --threads 4 --check-determinism
gate fleet-health cargo run --release -p efex-bench --bin fleet -- --tenants 16 --threads 4 --health
gate baseline cargo run --release -p efex-bench --bin report -- --check BENCH_baseline.json
# The superblock engine must reproduce the interpreter-recorded baseline
# bit-exactly (report --record refuses to run under it, so no re-record
# can satisfy this gate). The throughput ratio is printed, not gated.
gate baseline-superblock cargo run --release -p efex-bench --bin report -- --check BENCH_baseline.json --engine superblock
gate snap cargo run --release -p efex-bench --bin snap
gate fleet-migrate cargo run --release -p efex-bench --bin fleet -- --tenants 16 --threads 4 --migrate
gate fleet-kill-shard cargo run --release -p efex-bench --bin fleet -- --tenants 16 --threads 4 --kill-shard 1
gate throughput cargo run --release -p efex-bench --bin fleet -- --throughput
gate clippy cargo clippy --workspace --all-targets -- -D warnings
gate doc env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
gate doctest cargo test --doc --workspace -q
gate fmt cargo fmt --check

echo "ci: all gates passed"
