#!/bin/sh
# The full CI gate: build, test, lint, format. Run before every push.
set -eux

cargo build --release
cargo test -q
cargo test --workspace -q
cargo run --release -p efex-bench --bin lint
cargo run --release -p efex-bench --bin inject -- --all
cargo run --release -p efex-bench --bin fleet -- --tenants 16 --threads 4 --check-determinism
cargo run --release -p efex-bench --bin fleet -- --tenants 16 --threads 4 --health
cargo run --release -p efex-bench --bin report -- --check BENCH_baseline.json
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
