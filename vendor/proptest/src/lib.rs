//! Offline drop-in subset of the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors the
//! slice of proptest it uses: the [`proptest!`] macro, `Strategy` with
//! `prop_map`/`boxed`, range and tuple strategies, `prop_oneof!`, `Just`,
//! `any::<T>()`, `prop::collection::vec`, and the `prop_assert*`/`prop_assume!`
//! macros.
//!
//! Differences from upstream, deliberately accepted for tests-only use:
//! - **No shrinking.** A failing case panics with the generating input's
//!   `Debug` representation; re-run with `PROPTEST_SEED` to reproduce.
//! - **Deterministic by default.** Cases derive from a fixed seed so CI runs
//!   are reproducible; set `PROPTEST_SEED` (u64) to explore a different
//!   stream, `PROPTEST_CASES` to change the case count.
//! - Regression-persistence files (`*.proptest-regressions`) are ignored.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// The generation source handed to strategies.
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        pub fn gen_index(&mut self, len: usize) -> usize {
            assert!(len > 0);
            self.0.gen_range(0..len)
        }
    }

    /// A recipe for producing values of `Self::Value`. Generation only — no
    /// shrinking, unlike upstream proptest.
    pub trait Strategy {
        type Value: Debug;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    /// Object-safe mirror of [`Strategy`] used by [`BoxedStrategy`].
    trait DynStrategy<V> {
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S> DynStrategy<S::Value> for S
    where
        S: Strategy + 'static,
    {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Type-erased strategy, as returned by [`Strategy::boxed`]. Clones share
    /// the underlying strategy (upstream's `boxed()` likewise does not require
    /// `Clone`).
    pub struct BoxedStrategy<V>(std::rc::Rc<dyn DynStrategy<V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(std::rc::Rc::clone(&self.0))
        }
    }

    impl<V: Debug> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// Strategy that always yields a clone of its payload.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between type-erased branches; built by `prop_oneof!`.
    pub struct Union<V> {
        branches: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(branches: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(
                !branches.is_empty(),
                "prop_oneof! needs at least one branch"
            );
            Union { branches }
        }
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Union {
                branches: self.branches.clone(),
            }
        }
    }

    impl<V: Debug> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.gen_index(self.branches.len());
            self.branches[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy yielding any value of a primitive type; see [`crate::arbitrary::any`].
    pub struct AnyStrategy<T>(pub(crate) PhantomData<T>);

    impl<T> Clone for AnyStrategy<T> {
        fn clone(&self) -> Self {
            AnyStrategy(PhantomData)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    use super::strategy::{AnyStrategy, Strategy, TestRng};
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Primitive types with a canonical full-domain strategy.
    pub trait Arbitrary: Debug + Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — the full domain of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `len` and elements from
    /// `element`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end - self.len.start;
            let n = self.len.start + if span == 0 { 0 } else { rng.gen_index(span) };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, min..max)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod test_runner {
    use super::strategy::{Strategy, TestRng};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runner configuration (subset of upstream's field set).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases required per test.
        pub cases: u32,
        /// Give up after this many `prop_assume!` rejections.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig {
                cases,
                max_global_rejects: 4096,
            }
        }
    }

    /// Why a single case did not succeed.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the input; try another one.
        Reject(String),
        /// An assertion failed; the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Drives a strategy through `config.cases` executions of the test body.
    pub struct TestRunner {
        config: ProptestConfig,
        seed: u64,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig) -> TestRunner {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0x00c0_ffee_0000_0000);
            TestRunner { config, seed }
        }

        /// Runs `test` on fresh inputs until `cases` of them pass. Panics on
        /// the first failing case with the input's `Debug` form (no
        /// shrinking).
        pub fn run<S, F>(&mut self, strategy: &S, mut test: F)
        where
            S: Strategy,
            F: FnMut(S::Value) -> TestCaseResult,
        {
            let mut passed = 0u32;
            let mut rejected = 0u32;
            let mut case = 0u64;
            while passed < self.config.cases {
                let mut rng = TestRng(StdRng::seed_from_u64(
                    self.seed
                        .wrapping_add(case.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                ));
                case += 1;
                let input = strategy.generate(&mut rng);
                let shown = format!("{input:?}");
                match test(input) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > self.config.max_global_rejects {
                            panic!(
                                "proptest: too many prop_assume! rejections \
                                 ({rejected}) before reaching {} cases",
                                self.config.cases
                            );
                        }
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest: case #{case} failed: {msg}\n\
                             input: {shown}\n\
                             (seed {:#x}; no shrinking in the vendored runner)",
                            self.seed
                        );
                    }
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirrors `proptest::prelude::prop`, exposing submodules under a short
    /// alias (only `prop::collection` is vendored).
    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)+), l, r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($branch:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($branch)),+
        ])
    };
}

/// Expands each `fn name(args…) { body }` into a `#[test]` that drives the
/// argument strategies through the vendored [`test_runner::TestRunner`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!([$cfg] $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!([$crate::test_runner::ProptestConfig::default()] $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_parse_args!([$cfg] [$body] [] [] $($args)*);
        }
        $crate::__proptest_fns!([$cfg] $($rest)*);
    };
}

/// Accumulates `pat in strategy` / `ident: Type` args into parallel ident and
/// strategy lists, then hands off to `__proptest_run!`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_parse_args {
    // `name in strategy, …` / terminal without trailing comma.
    ([$cfg:expr] [$body:block] [$($ids:ident)*] [$($strats:tt)*]
     $id:ident in $strat:expr, $($rest:tt)*) => {
        $crate::__proptest_parse_args!(
            [$cfg] [$body] [$($ids)* $id] [$($strats)* ($strat)] $($rest)*)
    };
    ([$cfg:expr] [$body:block] [$($ids:ident)*] [$($strats:tt)*]
     $id:ident in $strat:expr) => {
        $crate::__proptest_run!([$cfg] [$body] [$($ids)* $id] [$($strats)* ($strat)])
    };
    // `name: Type, …` / terminal — sugar for `name in any::<Type>()`.
    ([$cfg:expr] [$body:block] [$($ids:ident)*] [$($strats:tt)*]
     $id:ident : $ty:ty, $($rest:tt)*) => {
        $crate::__proptest_parse_args!(
            [$cfg] [$body] [$($ids)* $id] [$($strats)* ($crate::arbitrary::any::<$ty>())]
            $($rest)*)
    };
    ([$cfg:expr] [$body:block] [$($ids:ident)*] [$($strats:tt)*]
     $id:ident : $ty:ty) => {
        $crate::__proptest_run!(
            [$cfg] [$body] [$($ids)* $id] [$($strats)* ($crate::arbitrary::any::<$ty>())])
    };
    // All args consumed.
    ([$cfg:expr] [$body:block] [$($ids:ident)*] [$($strats:tt)*]) => {
        $crate::__proptest_run!([$cfg] [$body] [$($ids)*] [$($strats)*])
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_run {
    ([$cfg:expr] [$body:block] [$($ids:ident)*] [$(($strat:expr))*]) => {{
        let strategy = ($($strat,)*);
        let mut runner = $crate::test_runner::TestRunner::new($cfg);
        runner.run(&strategy, |($($ids,)*)| {
            $body
            ::core::result::Result::Ok(())
        });
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 10u32..20, y in -4i32..4) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-4..4).contains(&y));
        }

        #[test]
        fn typed_args_cover_domain(flag: bool, byte: u8) {
            // Smoke test: both forms parse and run.
            prop_assert!(flag as u32 <= 1);
            prop_assert!(u32::from(byte) < 256);
        }

        #[test]
        fn oneof_map_and_vec_compose(v in prop::collection::vec(
            prop_oneof![Just(1u32), (5u32..7).prop_map(|x| x * 10)], 1..8))
        {
            prop_assert!(!v.is_empty() && v.len() < 8);
            for x in v {
                prop_assert!(x == 1 || x == 50 || x == 60);
            }
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u32..10, b in 0u32..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn boxed_strategies_clone() {
        let s: BoxedStrategy<u32> = (0u32..5).boxed();
        let t = s.clone();
        let mut runner =
            crate::test_runner::TestRunner::new(crate::test_runner::ProptestConfig::with_cases(8));
        runner.run(&(t,), |(x,)| {
            prop_assert!(x < 5);
            Ok(())
        });
    }

    #[test]
    #[should_panic(expected = "case #")]
    fn failing_case_panics_with_input() {
        let mut runner =
            crate::test_runner::TestRunner::new(crate::test_runner::ProptestConfig::with_cases(8));
        runner.run(&(0u32..10,), |(x,)| {
            prop_assert!(x > 100, "x was {x}");
            Ok(())
        });
    }
}
