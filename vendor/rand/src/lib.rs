//! Offline drop-in subset of the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors the small slice of the `rand` 0.8 API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`] methods
//! `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is a splitmix64 — statistically fine for workload shaping and
//! property tests, deterministic for a given seed, and dependency-free. It is
//! **not** the ChaCha-based generator real `rand` uses, so sequences differ
//! from upstream; nothing in this workspace depends on the exact stream.

pub mod rngs {
    /// Deterministic 64-bit generator (splitmix64) standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        pub(crate) fn from_state(state: u64) -> StdRng {
            StdRng { state }
        }

        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Seeding interface; only the `seed_from_u64` constructor is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Pre-whiten the seed so small seeds (0, 1, 2…) diverge immediately.
        let mut r = rngs::StdRng::from_state(seed ^ 0x5555_5555_5555_5555);
        let _ = r.next_u64_impl();
        r
    }
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Integer types usable with `Rng::gen_range(start..end)`.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start < end, "gen_range called with empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                // Modulo bias is < span/2^64 — irrelevant for test workloads.
                let off = rng.next_u64() % span;
                ((start as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )*};
}
impl_sample_uniform!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

/// The user-facing random-value interface (subset of `rand::Rng`).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample(self) < p
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let s: i32 = r.gen_range(-5..5);
            assert!((-5..5).contains(&s));
            let u: usize = r.gen_range(0..9);
            assert!(u < 9);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut r = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
