//! Offline drop-in subset of the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors the
//! slice of criterion its `harness = false` benches use: [`Criterion`],
//! benchmark groups, `Bencher::iter`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical machinery this shim times a fixed
//! number of iterations with `std::time::Instant` and prints mean wall-clock
//! time per iteration. That is enough to run `cargo bench` offline and eyeball
//! regressions; it makes no outlier or significance claims.

use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Re-export so benches using `criterion::black_box` keep working.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver (vendored: just a sample-count knob).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; `iter` does the timing.
pub struct Bencher {
    samples: usize,
    total_nanos: u128,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // One untimed warm-up, then `samples` timed iterations.
        std_black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            std_black_box(routine());
        }
        self.total_nanos += start.elapsed().as_nanos();
        self.iters += self.samples as u64;
    }
}

fn run_bench<F>(id: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples,
        total_nanos: 0,
        iters: 0,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("{id:<48} (no iterations)");
        return;
    }
    let per_iter = b.total_nanos / u128::from(b.iters);
    println!("{id:<48} {:>12} ns/iter ({} iters)", per_iter, b.iters);
}

/// Vendored `criterion_group!`: expands to a function running each bench
/// against a default [`Criterion`]. Config-closure forms are not supported.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Vendored `criterion_main!`: a `main` that invokes each group and ignores
/// the harness CLI flags cargo-bench passes (e.g. `--bench`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.sample_size(5).bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        // 1 warm-up + 5 samples.
        assert_eq!(calls, 6);
    }

    #[test]
    fn groups_inherit_then_override_sample_size() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut calls = 0u64;
        g.bench_function("inner", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        g.finish();
        assert_eq!(calls, 4);
    }
}
