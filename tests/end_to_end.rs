//! End-to-end integration tests spanning the machine, the kernel, the
//! user-level exception API, and the applications.

use efex::core::{DeliveryPath, ExceptionKind, System};
use efex::simos::kernel::RunOutcome;

/// The paper's headline result, measured end-to-end on the instruction
/// simulator: an order-of-magnitude improvement over Unix signals.
#[test]
fn order_of_magnitude_headline() {
    let fast = System::builder()
        .delivery(DeliveryPath::FastUser)
        .build()
        .unwrap()
        .measure_null_roundtrip(ExceptionKind::Breakpoint)
        .unwrap();
    let unix = System::builder()
        .delivery(DeliveryPath::UnixSignals)
        .build()
        .unwrap()
        .measure_null_roundtrip(ExceptionKind::Breakpoint)
        .unwrap();
    let ratio = unix.total_micros() / fast.total_micros();
    assert!(
        ratio >= 8.0,
        "expected ~10x, got {ratio:.1}x ({:.1} vs {:.1} us)",
        unix.total_micros(),
        fast.total_micros()
    );
}

/// Table 2's absolute fast-path numbers, within a tolerance band.
#[test]
fn fast_path_absolute_numbers_near_paper() {
    let mut sys = System::builder()
        .delivery(DeliveryPath::FastUser)
        .build()
        .unwrap();
    let simple = sys
        .measure_null_roundtrip(ExceptionKind::Breakpoint)
        .unwrap();
    assert!(
        (3.0..=8.0).contains(&simple.deliver_micros()),
        "paper: 5 us; got {:.1}",
        simple.deliver_micros()
    );
    let mut sys = System::builder()
        .delivery(DeliveryPath::FastUser)
        .build()
        .unwrap();
    let prot = sys
        .measure_null_roundtrip(ExceptionKind::WriteProtect)
        .unwrap();
    assert!(
        (10.0..=22.0).contains(&prot.deliver_micros()),
        "paper: 15 us; got {:.1}",
        prot.deliver_micros()
    );
}

/// A guest program mixing Unix signals and fast exceptions: the two
/// mechanisms coexist, as the paper's compatible implementation requires.
#[test]
fn signals_and_fast_exceptions_coexist() {
    let mut sys = System::builder()
        .delivery(DeliveryPath::FastUser)
        .build()
        .unwrap();
    let outcome = sys
        .run_program(
            r#"
            .org 0x00400000
            main:
                # Unix handler for SIGBUS (unaligned).
                li  $a0, 10
                la  $a1, sig_handler
                li  $v0, 4           # sigaction
                syscall
                # Fast path for breakpoints only.
                li  $a0, 0x200       # bit 9 = breakpoint
                la  $a1, fast_handler
                li  $a2, 0x7ffe0000
                li  $v0, 7           # uexc_enable
                syscall

                break 0              # -> fast handler (s1 += 1)
                lw  $t0, 2($zero)    # -> SIGBUS via signals (s2 += 1)

                addu $a0, $s1, $s2
                li  $v0, 2
                syscall
                nop

            fast_handler:
                addiu $s1, $s1, 1
                lui  $k0, 0x7ffe
                lw   $k1, 0x120($k0) # breakpoint frame EPC (9*32)
                addiu $k1, $k1, 4
                jr   $k1
                nop

            sig_handler:
                # sigreturn restores ALL registers from the sigcontext, so
                # the increment must go through the saved $s2 (reg 18).
                lw  $t1, 72($a2)
                addiu $t1, $t1, 1
                sw  $t1, 72($a2)
                lw  $t1, 136($a2)    # sigcontext PC
                addiu $t1, $t1, 4
                sw  $t1, 136($a2)
                jr  $ra
                nop
        "#,
            1_000_000,
        )
        .unwrap();
    assert_eq!(outcome, RunOutcome::Exited(2), "both handlers ran once");
    assert_eq!(sys.kernel().process().stats.signals_delivered, 1);
}

/// The fast path adds only the decode + compatibility-check overhead to
/// exceptions it does not handle (the paper's 17-instruction claim).
#[test]
fn fast_path_overhead_on_unhandled_exceptions_is_small() {
    // Null syscall cost with the fast path present must stay near the
    // calibrated 12 us — the added decode/compat instructions are noise.
    let mut sys = System::builder()
        .delivery(DeliveryPath::FastUser)
        .build()
        .unwrap();
    let k = sys.kernel_mut();
    let prog = k
        .load_user_program(
            r#"
            .org 0x00400000
            main:
                li $s0, 20
            loop:
                li $v0, 1          # getpid
                syscall
                addiu $s0, $s0, -1
                bnez $s0, loop
                nop
                li $v0, 2
                li $a0, 0
                syscall
                nop
        "#,
        )
        .unwrap();
    let sp = k.setup_stack(8).unwrap();
    k.exec(prog.entry(), sp);
    let c0 = k.cycles();
    assert_eq!(k.run_user(10_000).unwrap(), RunOutcome::Exited(0));
    let per_syscall = (k.cycles() - c0) / 20;
    let us = per_syscall as f64 / 25.0;
    assert!(
        (12.0..=18.0).contains(&us),
        "null syscall should stay near 12 us, got {us:.1}"
    );
}

/// Recursive exceptions fall back to the kernel and terminate when
/// unhandled — they never loop inside the fast path.
#[test]
fn recursive_fast_exception_goes_to_kernel() {
    let mut sys = System::builder()
        .delivery(DeliveryPath::FastUser)
        .build()
        .unwrap();
    // The fast handler itself takes an unaligned fault (enabled type), and
    // the comm frame gets overwritten; the handler then loops back to the
    // same fault. The run must not hang: the step budget catches it, or the
    // process dies on a kernel-delivered signal. Here the handler's own
    // fault IS deliverable (not recursive at hardware level — the paper's
    // software scheme permits nesting), so this spins; the test asserts the
    // step budget stops it rather than the simulator hanging or crashing.
    let outcome = sys.run_program(
        r#"
        .org 0x00400000
        main:
            li  $a0, 0x30        # AddrErrLoad | AddrErrStore
            la  $a1, handler
            li  $a2, 0x7ffe0000
            li  $v0, 7
            syscall
            lw  $t0, 2($zero)    # unaligned
            li  $v0, 2
            li  $a0, 0
            syscall
            nop
        handler:
            lw  $t1, 2($zero)    # faults again inside the handler
            jr  $ra
            nop
    "#,
        50_000,
    );
    assert!(matches!(outcome, Ok(RunOutcome::StepLimit)), "{outcome:?}");
}

/// Exhaustive cross-path agreement: the same guest program computes the
/// same result on every delivery path; only the cycle counts differ.
#[test]
fn program_semantics_identical_across_paths() {
    let program = r#"
        .org 0x00400000
        main:
            li  $s0, 0          # sum
            li  $s1, 10         # n
        loop:
            addu $s0, $s0, $s1
            addiu $s1, $s1, -1
            bnez $s1, loop
            nop
            move $a0, $s0       # 55
            li  $v0, 2
            syscall
            nop
    "#;
    let mut cycles = Vec::new();
    for path in [
        DeliveryPath::UnixSignals,
        DeliveryPath::FastUser,
        DeliveryPath::HardwareVectored,
    ] {
        let mut sys = System::builder().delivery(path).build().unwrap();
        let out = sys.run_program(program, 100_000).unwrap();
        assert_eq!(out, RunOutcome::Exited(55), "{path}");
        cycles.push(sys.kernel().cycles());
    }
    // No exceptions in the program: identical costs everywhere.
    assert_eq!(cycles[0], cycles[1]);
    assert_eq!(cycles[1], cycles[2]);
}
