//! Observability integration: the trace layer must report the exception
//! lifecycle faithfully and must cost nothing when disabled.

use efex::core::{DeliveryPath, ExceptionKind, System};
use efex::trace::{EventKind, FaultClass, RingSink, TracePath};
use std::rc::Rc;

/// A FastUser breakpoint round trip emits the full six-stage lifecycle, in
/// order, with monotonically non-decreasing cycle timestamps.
#[test]
fn fast_breakpoint_roundtrip_emits_ordered_lifecycle() {
    let ring = Rc::new(RingSink::new());
    let mut sys = System::builder()
        .delivery(DeliveryPath::FastUser)
        .trace_sink(ring.clone())
        .build()
        .unwrap();
    sys.measure_null_roundtrip(ExceptionKind::Breakpoint)
        .unwrap();

    let events = ring.events();
    assert!(
        events.len() >= 6,
        "expected a full lifecycle, got {}",
        events.len()
    );
    // The measured iteration is the last one traced.
    let last = &events[events.len() - 6..];
    let kinds: Vec<EventKind> = last.iter().map(|e| e.kind).collect();
    assert_eq!(
        kinds,
        [
            EventKind::FaultRaised,
            EventKind::KernelEntered,
            EventKind::StateSaved,
            EventKind::HandlerEntered,
            EventKind::HandlerReturned,
            EventKind::Resumed,
        ]
    );
    for w in last.windows(2) {
        assert!(
            w[0].cycles <= w[1].cycles,
            "timestamps must be monotonic: {} then {}",
            w[0].cycles,
            w[1].cycles
        );
    }
    assert!(last.windows(2).all(|w| w[0].seq < w[1].seq));
    for e in last {
        assert_eq!(e.path, TracePath::FastUser);
        assert_eq!(e.class, FaultClass::Breakpoint);
        assert_eq!(e.exc_code, 9, "breakpoint is MIPS ExcCode 9");
    }

    // The measurement also lands in the per-kind metrics.
    let k = sys
        .trace_metrics()
        .kind(TracePath::FastUser, FaultClass::Breakpoint);
    assert_eq!(k.count, 1);
    assert_eq!(k.deliver.count(), 1);
    assert_eq!(k.ret.count(), 1);
}

/// Tracing must never perturb the simulation: the same measurement with the
/// default (null) sink and with a live ring sink charges identical cycles.
#[test]
fn null_sink_charges_zero_cycles() {
    for kind in [
        ExceptionKind::Breakpoint,
        ExceptionKind::WriteProtect,
        ExceptionKind::Subpage,
    ] {
        let mut silent = System::builder()
            .delivery(DeliveryPath::FastUser)
            .build()
            .unwrap();
        let base = silent.measure_null_roundtrip(kind).unwrap();

        let ring = Rc::new(RingSink::new());
        let mut traced = System::builder()
            .delivery(DeliveryPath::FastUser)
            .trace_sink(ring.clone())
            .build()
            .unwrap();
        let observed = traced.measure_null_roundtrip(kind).unwrap();

        assert_eq!(
            base.deliver_cycles, observed.deliver_cycles,
            "{kind:?}: tracing changed delivery cost"
        );
        assert_eq!(
            base.return_cycles, observed.return_cycles,
            "{kind:?}: tracing changed return cost"
        );
        assert!(
            !ring.events().is_empty(),
            "{kind:?}: the traced run saw events"
        );
    }
}
