//! Property-based tests over the full stack.

use efex::core::{
    DeliveryPath, GuestMem, HandlerAction, HandlerSpec, HostProcess, Prot, Protection,
};
use efex::gc::{BarrierKind, Gc, GcConfig, ObjRef, Value};
use proptest::prelude::*;

/// Operations the GC shadow-model test drives.
#[derive(Clone, Debug)]
enum GcOp {
    /// Allocate an object of 2..8 words and remember it at a slot index.
    Alloc { words: u32, keep_at: usize },
    /// Store an int into a kept object's field.
    StoreInt { obj: usize, field: u32, value: i32 },
    /// Store a reference from one kept object to another.
    StoreRef { from: usize, field: u32, to: usize },
    /// Run a minor collection.
    Minor,
    /// Run a major collection.
    Major,
}

fn arb_op() -> impl Strategy<Value = GcOp> {
    prop_oneof![
        (2u32..8, 0usize..8).prop_map(|(words, keep_at)| GcOp::Alloc { words, keep_at }),
        // Value::Int is a 31-bit tagged integer.
        (0usize..8, 0u32..2, -(1i32 << 30)..(1i32 << 30))
            .prop_map(|(obj, field, value)| { GcOp::StoreInt { obj, field, value } }),
        (0usize..8, 0u32..2, 0usize..8).prop_map(|(from, field, to)| GcOp::StoreRef {
            from,
            field,
            to
        }),
        Just(GcOp::Minor),
        Just(GcOp::Major),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whatever sequence of allocations, stores, and collections runs, the
    /// values stored through rooted objects remain readable and correct:
    /// no live object is ever freed or corrupted, under either barrier.
    #[test]
    fn gc_never_loses_rooted_data(ops in prop::collection::vec(arb_op(), 1..60),
                                  page_barrier: bool) {
        let mut gc = Gc::new(GcConfig {
            path: DeliveryPath::FastUser,
            barrier: if page_barrier { BarrierKind::PageProtection } else { BarrierKind::SoftwareCheck },
            heap_bytes: 1024 * 1024,
            minor_threshold: 8 * 1024,
            ..GcConfig::default()
        }).unwrap();

        // Eight root slots, each holding an object and a shadow of its
        // integer fields.
        let mut kept: Vec<Option<(ObjRef, Vec<Option<i32>>)>> = vec![None; 8];
        for op in ops {
            match op {
                GcOp::Alloc { words, keep_at } => {
                    let obj = gc.alloc(words).unwrap();
                    // Replace the old root (popping its shadow).
                    if let Some((old, _)) = kept[keep_at].take() {
                        // Remove from the GC root set by rebuilding roots.
                        let _ = old;
                    }
                    gc.push_root(obj);
                    kept[keep_at] = Some((obj, vec![None; words as usize]));
                }
                GcOp::StoreInt { obj, field, value } => {
                    if let Some((o, shadow)) = kept[obj].as_mut() {
                        if (field as usize) < shadow.len() {
                            gc.store(*o, field, Value::Int(value)).unwrap();
                            shadow[field as usize] = Some(value);
                        }
                    }
                }
                GcOp::StoreRef { from, field, to } => {
                    let target = kept[to].as_ref().map(|(o, _)| *o);
                    if let (Some((o, shadow)), Some(t)) = (kept[from].as_mut(), target) {
                        if (field as usize) < shadow.len() {
                            gc.store(*o, field, Value::Ref(t)).unwrap();
                            shadow[field as usize] = None; // ref, not int
                        }
                    }
                }
                GcOp::Minor => gc.collect_minor(),
                GcOp::Major => gc.collect_major(),
            }
            // Invariant: every shadowed int is still there.
            for slot in kept.iter().flatten() {
                let (obj, shadow) = slot;
                for (i, v) in shadow.iter().enumerate() {
                    if let Some(expect) = v {
                        prop_assert_eq!(
                            gc.load(*obj, i as u32).unwrap(),
                            Value::Int(*expect),
                            "field {} of {:?}", i, obj
                        );
                    }
                }
            }
        }
    }

    /// Host-level protected memory behaves like memory: a write-barrier
    /// handler that amplifies-and-retries never changes observable values,
    /// for arbitrary (address, value) sequences.
    #[test]
    fn protected_memory_is_still_memory(
        writes in prop::collection::vec((0u32..1024, any::<u32>()), 1..50),
        protect_every in 1usize..10,
    ) {
        let mut h = HostProcess::builder()
            .delivery(DeliveryPath::FastUser)
            .build()
            .unwrap();
        let base = h.alloc_region(4096, Prot::ReadWrite).unwrap();
        h.store_u32(base, 0).unwrap();
        h.set_handler(HandlerSpec::new(move |ctx, info| {
            ctx.protect(Protection::region(info.vaddr & !0xfff, 4096).read_write())
                .unwrap();
            HandlerAction::Retry
        }));
        let mut shadow = std::collections::BTreeMap::new();
        for (i, (word, value)) in writes.iter().enumerate() {
            if i % protect_every == 0 {
                h.protect(Protection::region(base, 4096).read_only()).unwrap();
            }
            let addr = base + word * 4;
            h.store_u32(addr, *value).unwrap();
            shadow.insert(addr, *value);
        }
        for (addr, value) in shadow {
            prop_assert_eq!(h.load_u32(addr).unwrap(), value);
        }
    }

    /// The machine's cycle counter is deterministic: running the same
    /// program twice gives identical cycles, instructions, and exceptions.
    #[test]
    fn simulation_is_deterministic(n in 1u32..30) {
        let run = || {
            let mut sys = efex::core::System::builder()
                .delivery(DeliveryPath::FastUser)
                .build()
                .unwrap();
            let src = format!(r#"
                .org 0x00400000
                main:
                    li $s0, {n}
                loop:
                    break 0
                    addiu $s0, $s0, -1
                    bnez $s0, loop
                    nop
                    li $v0, 2
                    li $a0, 0
                    syscall
                    nop
                handler:
                    lui  $k0, 0x7ffe
                    lw   $k1, 0x120($k0)
                    addiu $k1, $k1, 4
                    jr   $k1
                    nop
                setup:
            "#);
            // Enable the fast path first via a tiny prologue.
            let full = src.replace(
                "main:\n",
                "main:\n    li $a0, 0x200\n    la $a1, handler\n    li $a2, 0x7ffe0000\n    li $v0, 7\n    syscall\n",
            );
            let out = sys.run_program(&full, 1_000_000).unwrap();
            (format!("{out:?}"), sys.kernel().cycles(), sys.kernel().machine().instructions_retired())
        };
        prop_assert_eq!(run(), run());
    }
}
