//! Integration tests for the application crates running over the full
//! stack, asserting the paper's qualitative conclusions.

use efex::core::DeliveryPath;
use efex::gc::{workloads as gcw, BarrierKind, Gc, GcConfig};
use efex::pstore::{workloads as psw, Policy, PstoreConfig, StableGraph, Strategy};

fn lisp_params() -> gcw::LispOpsParams {
    gcw::LispOpsParams {
        iterations: 20,
        depth: 6,
        table_pages: 32,
        stores_per_iteration: 20,
        mutator_cycles: 5_000,
        seed: 99,
    }
}

fn gc_with(path: DeliveryPath, barrier: BarrierKind, eager: bool) -> Gc {
    Gc::new(GcConfig {
        path,
        barrier,
        eager_amplification: eager,
        heap_bytes: 4 * 1024 * 1024,
        minor_threshold: 16 * 1024,
        ..GcConfig::default()
    })
    .unwrap()
}

/// Table 4's direction: fast exceptions shrink the page-protection
/// barrier's cost on identical heap work.
#[test]
fn gc_fast_exceptions_beat_signals() {
    let mut slow = gc_with(
        DeliveryPath::UnixSignals,
        BarrierKind::PageProtection,
        false,
    );
    let r_slow = gcw::lisp_ops(&mut slow, lisp_params()).unwrap();
    let mut fast = gc_with(DeliveryPath::FastUser, BarrierKind::PageProtection, true);
    let r_fast = gcw::lisp_ops(&mut fast, lisp_params()).unwrap();

    assert_eq!(
        r_slow.stats.barrier_faults, r_fast.stats.barrier_faults,
        "the controlled variable: identical fault counts"
    );
    assert_eq!(
        r_slow.stats.objects_allocated,
        r_fast.stats.objects_allocated
    );
    assert!(r_fast.micros < r_slow.micros);
}

/// Heap contents after the workload are identical regardless of barrier —
/// the barrier is a pure performance mechanism.
#[test]
fn gc_barrier_choice_does_not_change_results() {
    let run = |barrier, eager| {
        let mut gc = gc_with(DeliveryPath::FastUser, barrier, eager);
        let r = gcw::lisp_ops(&mut gc, lisp_params()).unwrap();
        (
            r.stats.objects_allocated,
            r.stats.minor_collections,
            r.stats.major_collections,
        )
    };
    let a = run(BarrierKind::PageProtection, true);
    let b = run(BarrierKind::SoftwareCheck, false);
    assert_eq!(a, b);
}

/// Figure 3's direction, measured end-to-end: with cheap exceptions and
/// high pointer reuse, exception-based residency detection beats checks.
#[test]
fn swizzling_crossover_behaves_like_figure3() {
    let run = |strategy, path, u| {
        psw::pointer_uses(
            StableGraph::random(24, 50, 40, 11),
            PstoreConfig {
                strategy,
                policy: Policy::Lazy,
                path,
                ..PstoreConfig::default()
            },
            u,
        )
        .unwrap()
        .micros
    };
    // Low reuse: checks win against even fast exceptions... only the
    // marginal cost matters; at u=1 both pay mostly page loads, so compare
    // against the *slow* path where the gap is decisive.
    assert!(
        run(Strategy::SoftwareCheck, DeliveryPath::FastUser, 1)
            < run(Strategy::Unaligned, DeliveryPath::UnixSignals, 1)
    );
    // High reuse: fast exceptions win.
    assert!(
        run(Strategy::Unaligned, DeliveryPath::FastUser, 120)
            < run(Strategy::SoftwareCheck, DeliveryPath::FastUser, 120)
    );
}

/// Figure 4's direction, measured end-to-end.
#[test]
fn swizzling_density_behaves_like_figure4() {
    let run = |strategy, policy, used| {
        psw::sparse_traversal(
            StableGraph::random(32, 50, 50, 12),
            PstoreConfig {
                strategy,
                policy,
                path: DeliveryPath::FastUser,
                ..PstoreConfig::default()
            },
            used,
            16,
        )
        .unwrap()
        .micros
    };
    assert!(
        run(Strategy::Unaligned, Policy::Lazy, 2) < run(Strategy::ProtFault, Policy::Eager, 2),
        "sparse favors lazy"
    );
    assert!(
        run(Strategy::ProtFault, Policy::Eager, 50) < run(Strategy::Unaligned, Policy::Lazy, 50),
        "dense favors eager"
    );
}

/// The lazy-data structures compose with the rest of the stack.
#[test]
fn lazy_structures_end_to_end() {
    use efex::lazydata::LazyRuntime;
    let mut rt = LazyRuntime::new(DeliveryPath::FastUser, 128 * 1024).unwrap();
    let fib = {
        let (mut a, mut b) = (0i64, 1i64);
        rt.new_stream(move |_| {
            let v = a;
            let next = a + b;
            a = b;
            b = next;
            v as i32
        })
        .unwrap()
    };
    assert_eq!(
        rt.take(fib, 10).unwrap(),
        vec![0, 1, 1, 2, 3, 5, 8, 13, 21, 34]
    );
    // Cost: one fast unaligned fault per materialized cell.
    assert_eq!(rt.stats().faults, 10);
}

/// DSM coherence holds under a deterministic random workload against a
/// shadow model.
#[test]
fn dsm_matches_shadow_model() {
    use efex::dsm::{Dsm, DsmConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut d = Dsm::new(DsmConfig {
        nodes: 3,
        pages: 4,
        path: DeliveryPath::FastUser,
        ..DsmConfig::default()
    })
    .unwrap();
    let mut shadow = vec![0u32; (d.len() / 4) as usize];
    let base = d.base();
    let mut rng = StdRng::seed_from_u64(77);
    for _ in 0..300 {
        let node = rng.gen_range(0..3);
        let word = rng.gen_range(0..shadow.len()) as u32;
        let addr = base + word * 4;
        if rng.gen_bool(0.5) {
            let v = rng.gen::<u32>();
            d.write(node, addr, v).unwrap();
            shadow[word as usize] = v;
        } else {
            assert_eq!(
                d.read(node, addr).unwrap(),
                shadow[word as usize],
                "node {node} read stale data at word {word}"
            );
        }
    }
    assert!(d.stats().faults > 0, "the workload must exercise coherence");
}
