//! Writing a guest program with its own fast exception handler.
//!
//! ```text
//! cargo run --example guest_assembly
//! ```
//!
//! Everything here executes instruction-by-instruction on the simulated
//! R3000: the program enables fast user-level delivery of arithmetic
//! overflow, installs a handler that saturates the result, and returns by
//! jumping straight back — the kernel is never re-entered.

use efex::core::{DeliveryPath, System};
use efex::simos::kernel::RunOutcome;

const PROGRAM: &str = r#"
.org 0x00400000
main:
    li   $a0, 0x1000        # mask: bit 12 = arithmetic overflow
    la   $a1, ovf_handler
    li   $a2, 0x7ffe0000    # communication page
    li   $v0, 7             # uexc_enable
    syscall

    li   $t0, 0x7fffffff    # INT_MAX
    li   $t1, 1
    add  $t2, $t0, $t1      # overflows -> fast user-level delivery
resume:
    move $a0, $t2           # exit code = saturated result (truncated)
    li   $v0, 2
    syscall
    nop

# The handler: saturate $t2 and resume after the faulting add, without
# entering the kernel.
ovf_handler:
    li   $t2, 0x7fffffff    # saturate
    lui  $k0, 0x7ffe
    lw   $k1, 0x180($k0)    # saved EPC (frame 12 = overflow, offset 12*32)
    addiu $k1, $k1, 4       # skip the faulting add
    jr   $k1
    nop
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sys = System::builder().delivery(DeliveryPath::FastUser).build()?;
    let outcome = sys.run_program(PROGRAM, 1_000_000)?;
    match outcome {
        RunOutcome::Exited(code) => {
            println!("guest exited with {code} (0x{:08x})", code as u32);
            assert_eq!(code as u32, 0x7fff_ffff, "saturated result");
        }
        other => println!("unexpected outcome: {other:?}"),
    }
    let m = sys.kernel().machine();
    println!(
        "instructions retired: {}, exceptions taken: {}, simulated time: {:.1} us",
        m.instructions_retired(),
        m.exceptions_taken(),
        sys.kernel().micros()
    );
    println!(
        "signal machinery used: {} times",
        sys.kernel().process().stats.signals_delivered
    );
    Ok(())
}
