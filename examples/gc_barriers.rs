//! Generational-GC write barriers three ways (Section 4.1 of the paper).
//!
//! ```text
//! cargo run --release --example gc_barriers
//! ```
//!
//! Runs the same Lisp-style churn workload with:
//! 1. page-protection barrier over Unix signals + `mprotect` (the 1994
//!    status quo),
//! 2. page-protection barrier over fast user-level exceptions with eager
//!    amplification (the paper's mechanism),
//! 3. software checks before every store (the Hosking & Moss alternative).

use efex::core::DeliveryPath;
use efex::gc::{workloads, BarrierKind, Gc, GcConfig};

fn run(name: &str, path: DeliveryPath, barrier: BarrierKind, eager: bool) {
    let mut gc = Gc::new(GcConfig {
        path,
        barrier,
        eager_amplification: eager,
        heap_bytes: 4 * 1024 * 1024,
        minor_threshold: 16 * 1024,
        ..GcConfig::default()
    })
    .expect("collector");
    let report = workloads::lisp_ops(
        &mut gc,
        workloads::LispOpsParams {
            iterations: 30,
            depth: 6,
            table_pages: 64,
            stores_per_iteration: 30,
            mutator_cycles: 20_000,
            seed: 42,
        },
    )
    .expect("workload");
    let s = report.stats;
    println!(
        "{:<34} {:>9.0} us  ({:>4} faults, {:>6} checks, {} collections)",
        name,
        report.micros,
        s.barrier_faults,
        s.software_checks,
        s.minor_collections + s.major_collections,
    );
}

fn main() {
    println!("Lisp-operations workload, identical heap work, three barriers:\n");
    run(
        "SIGSEGV + mprotect (Ultrix path)",
        DeliveryPath::UnixSignals,
        BarrierKind::PageProtection,
        false,
    );
    run(
        "fast exceptions + eager amplify",
        DeliveryPath::FastUser,
        BarrierKind::PageProtection,
        true,
    );
    run(
        "software checks (5 cyc/store)",
        DeliveryPath::FastUser,
        BarrierKind::SoftwareCheck,
        false,
    );
    println!("\nFast exceptions move page protection from clearly-losing to");
    println!("competitive with per-store checks — the paper's Table 5 point.");
}
