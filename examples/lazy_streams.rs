//! Unbounded data structures, futures, and full/empty bits (Section 4.2.1).
//!
//! ```text
//! cargo run --example lazy_streams
//! ```
//!
//! An infinite stream of primes materialized one cons cell per unaligned
//! fault; a future resolved on first touch; a full/empty synchronized word.

use efex::core::DeliveryPath;
use efex::lazydata::{LazyRuntime, SyncVar};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rt = LazyRuntime::new(DeliveryPath::FastUser, 256 * 1024)?;

    // An infinite stream of primes: nothing is computed until asked for.
    let primes = rt.new_stream(|i| {
        let mut count = 0;
        let mut n = 1;
        while count <= i {
            n += 1;
            if (2..n).all(|d| n % d != 0) {
                count += 1;
            }
        }
        n
    })?;
    println!("first 10 primes: {:?}", rt.take(primes, 10)?);
    let s = rt.stats();
    println!(
        "  ({} unaligned faults extended the list; re-reading is free)",
        s.faults
    );
    let before = rt.stats().faults;
    println!("re-read:         {:?}", rt.take(primes, 10)?);
    println!("  ({} new faults)", rt.stats().faults - before);

    // A future: the producer runs exactly once, at first touch.
    let answer = rt.make_future(|| {
        println!("  [producer running...]");
        42
    })?;
    println!("\ntouching the future:");
    println!("  value = {}", rt.touch(answer)?);
    println!(
        "  touching again (no fault, no producer): {}",
        rt.touch(answer)?
    );

    // Full/empty-bit synchronization.
    println!("\nfull/empty word:");
    let v = SyncVar::new(&mut rt)?;
    match v.read(&mut rt) {
        Err(e) => println!("  read on empty  -> {e}"),
        Ok(_) => unreachable!(),
    }
    v.write(&mut rt, 7)?;
    println!("  write 7        -> full");
    match v.write(&mut rt, 8) {
        Err(e) => println!("  write on full  -> {e}"),
        Ok(_) => unreachable!(),
    }
    println!(
        "  read           -> {} (empties the word)",
        v.read(&mut rt)?
    );

    println!("\ntotal simulated time: {:.1} us", rt.micros());
    Ok(())
}
