//! Conditional data watchpoints (Wahbe-style) over fast exceptions.
//!
//! ```text
//! cargo run --example watchpoints
//! ```
//!
//! Watches one word of a structure for decreasing writes. The watched page
//! stays protected across hits (the handler *emulates* each store instead
//! of unprotecting), and subpage narrowing lets the kernel absorb stores to
//! the rest of the page without ever running the debugger.

use efex::core::DeliveryPath;
use efex::watch::Debugger;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut d = Debugger::new(DeliveryPath::FastUser, /* subpages */ true)?;
    let account = d.alloc(4096)?;
    d.store(account, 1000)?; // balance

    // Fire only when the balance DROPS below 100.
    let w = d.watch_write(account, 4, |_old, new| new < 100)?;

    println!("running the 'program':");
    d.store(account, 900)?; // fine
    d.store(account + 2048, 7)?; // unrelated data, other subpage
    d.store(account, 500)?; // fine
    d.store(account, 42)?; // triggers!
    d.store(account, 800)?; // fine again

    for hit in d.take_hits() {
        println!(
            "  watch hit at {:#x}: balance {} -> {}",
            hit.vaddr, hit.old, hit.new
        );
    }
    let s = d.stats();
    println!("\nstatistics:");
    println!("  condition-true hits:        {}", s.hits);
    println!("  faults seen by debugger:    {}", s.faults);
    println!("  absorbed in-kernel (subpage): {}", s.kernel_absorbed);
    println!("  simulated time: {:.1} us", d.micros());
    assert_eq!(d.hit_count(w)?, 1);
    assert_eq!(d.load(account)?, 800);
    Ok(())
}
