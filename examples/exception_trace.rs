//! Exception observability: trace one FastUser breakpoint round trip.
//!
//! ```text
//! cargo run --example exception_trace
//! ```
//!
//! Attaches a ring sink to the guest system, runs the Table 2 breakpoint
//! microbenchmark, and prints the captured lifecycle events plus the
//! per-(path, class) cycle histograms.

use efex::core::{DeliveryPath, ExceptionKind, System};
use efex::trace::RingSink;
use std::rc::Rc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ring = Rc::new(RingSink::new());
    let mut sys = System::builder()
        .delivery(DeliveryPath::FastUser)
        .trace_sink(ring.clone())
        .build()?;
    let r = sys.measure_null_roundtrip(ExceptionKind::Breakpoint)?;
    println!(
        "measured: deliver {:.1} us, return {:.1} us\n",
        r.deliver_micros(),
        r.return_micros()
    );
    println!("lifecycle ({} events captured):", ring.len());
    for ev in ring.events() {
        println!(
            "  {:>10} cy  {:<16} pc={:#010x}",
            ev.cycles,
            ev.kind.as_str(),
            ev.pc
        );
    }
    println!("\nmetrics:\n{}", sys.trace_metrics().to_json());
    Ok(())
}
