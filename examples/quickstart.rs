//! Quickstart: measure exception delivery on all three paths.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Boots three simulated systems — conventional Unix signals, the paper's
//! software fast path, and the Tera-style hardware vectoring — and runs the
//! null-handler round-trip microbenchmark (Table 2 of the paper) on each.

use efex::core::{DeliveryPath, ExceptionKind, System};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Null-handler exception round trips on the simulated 25 MHz R3000:\n");
    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "delivery path", "deliver (us)", "return (us)", "total (us)"
    );
    for path in [
        DeliveryPath::UnixSignals,
        DeliveryPath::FastUser,
        DeliveryPath::HardwareVectored,
    ] {
        let mut sys = System::builder().delivery(path).build()?;
        let r = sys.measure_null_roundtrip(ExceptionKind::Breakpoint)?;
        println!(
            "{:<22} {:>12.1} {:>12.1} {:>12.1}",
            path.to_string(),
            r.deliver_micros(),
            r.return_micros(),
            r.total_micros()
        );
    }
    println!("\nThe paper's headline: the software fast path is an order of magnitude");
    println!("faster than Unix signals (8 us vs 80 us), and hardware vectoring buys");
    println!("another factor of 2-3.");
    Ok(())
}
