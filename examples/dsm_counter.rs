//! Distributed shared memory over protection faults.
//!
//! ```text
//! cargo run --release --example dsm_counter
//! ```
//!
//! Two simulated nodes increment a shared counter in turns. Every ownership
//! change is a protection fault driving the write-invalidate protocol, so
//! exception delivery cost sits on the critical path — compare the three
//! delivery paths.

use efex::core::DeliveryPath;
use efex::dsm::{Dsm, DsmConfig};

fn run(path: DeliveryPath) -> Result<(), Box<dyn std::error::Error>> {
    let mut d = Dsm::new(DsmConfig {
        nodes: 2,
        pages: 1,
        path,
        ..DsmConfig::default()
    })?;
    let counter = d.base();
    d.write(0, counter, 0)?;
    for i in 0..30 {
        let node = (i % 2) as usize;
        let v = d.read(node, counter)?;
        d.write(node, counter, v + 1)?;
    }
    let total = d.read(0, counter)?;
    println!(
        "{:<20} counter={:<3} {:>9.0} us total, {:>3} faults, {} page transfers",
        path.to_string(),
        total,
        d.total_micros(),
        d.stats().faults,
        d.stats().page_transfers
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Two nodes ping-ponging a shared counter (write-invalidate DSM):\n");
    for path in [
        DeliveryPath::UnixSignals,
        DeliveryPath::FastUser,
        DeliveryPath::HardwareVectored,
    ] {
        run(path)?;
    }
    println!("\nIdentical protocol traffic; only the exception delivery cost");
    println!("changes — and it is on every coherence miss.");
    Ok(())
}
