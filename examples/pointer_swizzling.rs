//! Pointer swizzling for persistent stores (Section 4.2.2, Figures 3-4).
//!
//! ```text
//! cargo run --release --example pointer_swizzling
//! ```
//!
//! Traverses the same on-disk object graph with eager swizzling (protection
//! faults) and lazy swizzling (unaligned tagged pointers), at a sparse and
//! a dense pointer-use density, under fast exceptions.

use efex::core::DeliveryPath;
use efex::pstore::{workloads, Policy, PstoreConfig, StableGraph, Strategy};

fn run(policy: Policy, strategy: Strategy, used: u32) -> (f64, u64, u64) {
    let graph = StableGraph::random(48, 50, 50, 7);
    let r = workloads::sparse_traversal(
        graph,
        PstoreConfig {
            strategy,
            policy,
            path: DeliveryPath::FastUser,
            ..PstoreConfig::default()
        },
        used,
        24,
    )
    .expect("traversal");
    (r.micros, r.faults, r.swizzles)
}

fn main() {
    println!("Traversal of a 48-page store, 50 pointers/page, 24 pages visited:\n");
    println!(
        "{:<10} {:<22} {:>10} {:>8} {:>9}",
        "density", "policy", "time (us)", "faults", "swizzles"
    );
    for (label, used) in [("sparse", 2u32), ("dense", 50u32)] {
        for (policy, strategy) in [
            (Policy::Eager, Strategy::ProtFault),
            (Policy::Lazy, Strategy::Unaligned),
        ] {
            let (us, faults, swz) = run(policy, strategy, used);
            println!(
                "{:<10} {:<22} {:>10.0} {:>8} {:>9}",
                label,
                format!("{policy} ({strategy})"),
                us,
                faults,
                swz
            );
        }
        println!();
    }
    println!("Sparse use favors lazy swizzling; dense use favors eager — and fast");
    println!("exceptions make lazy viable over a much wider range (Figure 4).");
}
