//! Subpage-granularity protection (Section 3.2.4).
//!
//! ```text
//! cargo run --example subpage_protection
//! ```
//!
//! Write-protects a single 1 KB logical page of a 4 KB hardware page.
//! Stores to the protected subpage are delivered to the handler; stores to
//! the other three subpages are emulated by the kernel and the program
//! never notices.

use efex::core::{
    DeliveryPath, GuestMem, HandlerAction, HandlerSpec, HostProcess, Prot, Protection,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut h = HostProcess::builder()
        .delivery(DeliveryPath::FastUser)
        .build()?;
    let page = h.alloc_region(4096, Prot::ReadWrite)?;
    h.store_u32(page, 0)?; // make it resident

    // Protect only the first 1 KB logical page.
    h.subpage_protect(Protection::region(page, 1024).read_only())?;
    h.set_handler(HandlerSpec::new(|_, info| {
        println!("  handler: write to protected subpage at {:#x}", info.vaddr);
        HandlerAction::Retry
    }));

    println!("store into unprotected subpage (offset 2048):");
    h.store_u32(page + 2048, 7)?;
    println!(
        "  -> kernel emulated it silently ({} emulations, {} deliveries)\n",
        h.stats().subpage_emulated,
        h.stats().faults_delivered
    );

    println!("store into protected subpage (offset 16):");
    h.store_u32(page + 16, 9)?;
    println!(
        "  -> delivered ({} emulations, {} deliveries)",
        h.stats().subpage_emulated,
        h.stats().faults_delivered
    );

    assert_eq!(h.load_u32(page + 2048)?, 7);
    assert_eq!(h.load_u32(page + 16)?, 9);
    println!("\nboth stores landed; simulated time {:.1} us", h.micros());
    println!("space cost: one bit per 1 KB subpage, as in the paper.");
    Ok(())
}
