//! Snapshot a running guest mid-exception-storm, restore it into a fresh
//! system, and prove the resumed run is bit-exact.
//!
//! ```text
//! cargo run --example snapshot_resume
//! ```
//!
//! Boots a fast-user-path system running the Table 2 breakpoint
//! microbenchmark, runs it halfway, serializes the whole guest (CPU, CP0,
//! TLB, memory, kernel tables) through the `efex-snap` wire format, restores
//! the bytes into a freshly booted system, and finishes both runs. Their
//! final machine digests, cycle counts, and exit codes must agree exactly.

use efex::core::{DeliveryPath, System, SystemSnapshot};
use efex::simos::RunOutcome;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = efex::core::debug_progs::fast_simple_bench(4);

    // Run A: uninterrupted, for the reference fingerprint.
    let mut a = boot(&program)?;
    let (steps, a_out) = finish(&mut a)?;
    let a_digest = a.kernel().machine().step_digest();
    let a_cycles = a.kernel().machine().cycles();
    println!("reference run : {steps} steps, {a_cycles} cycles, {a_out:?}");

    // Run B: stop halfway and snapshot.
    let mut b = boot(&program)?;
    for _ in 0..steps / 2 {
        b.kernel_mut().run_user(1)?;
    }
    let bytes = b.snapshot().to_bytes();
    println!(
        "snapshot      : {} bytes at step {} (checksummed, versioned)",
        bytes.len(),
        steps / 2
    );

    // Run C: a fresh system, restored from the wire, resumed to the end.
    let snap = SystemSnapshot::from_bytes(&bytes)?;
    let mut c = boot(&program)?;
    c.restore(&snap)?;
    let (_, c_out) = finish(&mut c)?;
    let c_digest = c.kernel().machine().step_digest();
    let c_cycles = c.kernel().machine().cycles();
    println!("restored run  : {c_cycles} cycles, {c_out:?}");

    assert_eq!(a_digest, c_digest, "machine digests diverged");
    assert_eq!(a_cycles, c_cycles, "cycle counts diverged");
    assert_eq!(a_out, c_out, "outcomes diverged");
    println!("restored run is bit-exact against the uninterrupted run");
    Ok(())
}

fn boot(program: &str) -> Result<System, Box<dyn std::error::Error>> {
    let mut sys = System::builder().delivery(DeliveryPath::FastUser).build()?;
    let prog = sys.kernel_mut().load_user_program(program)?;
    let sp = sys.kernel_mut().setup_stack(16)?;
    sys.kernel_mut().exec(prog.entry(), sp);
    Ok(sys)
}

fn finish(sys: &mut System) -> Result<(u64, RunOutcome), Box<dyn std::error::Error>> {
    let mut steps = 0u64;
    loop {
        steps += 1;
        match sys.kernel_mut().run_user(1)? {
            RunOutcome::StepLimit => continue,
            out => return Ok((steps, out)),
        }
    }
}
