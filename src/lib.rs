//! # efex — efficient exception handling, reproduced
//!
//! Umbrella crate for the reproduction of Thekkath & Levy,
//! *Hardware and Software Support for Efficient Exception Handling*
//! (ASPLOS-VI, 1994).
//!
//! Each subsystem lives in its own crate; this crate re-exports them under
//! stable module names so examples and downstream users can depend on a
//! single package:
//!
//! - [`mips`] — MIPS-I-subset machine simulator (CPU, TLB, assembler).
//! - [`simos`] — simulated kernel: Unix signal path + fast exception path.
//! - [`core`] — the paper's user-level exception API.
//! - [`oscost`] — Table-1 operating-system delivery cost models.
//! - [`analysis`] — break-even models (Table 5, Figures 3 and 4).
//! - [`fleet`] — sharded multi-tenant simulation across worker threads.
//! - [`health`] — always-on effectiveness monitoring: metric registry,
//!   declarative invariants, Prometheus/JSONL exposition.
//! - [`gc`] — generational collector with pluggable write barriers.
//! - [`pstore`] — persistent store with pointer swizzling.
//! - [`lazydata`] — unbounded structures / futures / full-empty bits.
//! - [`dsm`] — page-based distributed shared memory.
//! - [`watch`] — conditional data watchpoints (debugger support).
//! - [`snap`] — versioned, checksummed checkpoint wire format.
//! - [`trace`] — exception lifecycle tracing and per-kind metrics.
//! - [`inject`] — deterministic fault injection over the delivery paths.
//! - [`report`] — perf baselines, regression checking, Chrome-trace and
//!   flamegraph export.
//! - [`verify`] — static analyzer for the guest handler images (CFG,
//!   delay-slot hazards, save-set liveness, static instruction bounds).
//!
//! # Quickstart
//!
//! ```no_run
//! use efex::core::{System, DeliveryPath, ExceptionKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sys = System::builder().delivery(DeliveryPath::FastUser).build()?;
//! let report = sys.measure_null_roundtrip(ExceptionKind::Breakpoint)?;
//! println!("round trip: {:.1} us", report.total_micros());
//! # Ok(())
//! # }
//! ```

pub use efex_analysis as analysis;
pub use efex_core as core;
pub use efex_dsm as dsm;
pub use efex_fleet as fleet;
pub use efex_gc as gc;
pub use efex_health as health;
pub use efex_inject as inject;
pub use efex_lazydata as lazydata;
pub use efex_mips as mips;
pub use efex_oscost as oscost;
pub use efex_pstore as pstore;
pub use efex_report as report;
pub use efex_simos as simos;
pub use efex_snap as snap;
pub use efex_trace as trace;
pub use efex_verify as verify;
pub use efex_watch as watch;
